package main

// Tests for the telemetry surface: /metrics exposition and its
// agreement with /stats, the /healthz+/readyz lifecycle (warm-up and
// audit demotion), the re-map stage traces (/lastmap and the `trace`
// command), the stats-line latency fields, and the serve-path cost of
// the instrumentation itself.

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"pathalias/internal/obs"
	"pathalias/internal/routedb"
)

// metricValue finds one sample by name and exact label subset match.
func metricValue(t *testing.T, samples []obs.Sample, name string, labels map[string]string) float64 {
	t.Helper()
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value
		}
	}
	t.Fatalf("no sample %s%v in scrape", name, labels)
	return 0
}

// scrapeMetrics GETs /metrics off the daemon's handler and parses it.
func scrapeMetrics(t *testing.T, d *daemon) []obs.Sample {
	t.Helper()
	srv := httptest.NewServer(d.handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	return samples
}

// TestMetricsEndpoint drives traffic through a -map daemon and checks
// that the scrape carries every metric family the issue promises, with
// values that agree with /stats.
func TestMetricsEndpoint(t *testing.T) {
	d := newTestMapDaemon(t)
	d.metrics.registerBuildInfo("test-build", "some/routes.rdb")

	// Prime the counters: pipelined resolves (hit, suffix-miss territory,
	// miss), a what-if overlay resolve, and one impact query.
	in := strings.NewReader("duke honey\nresearch lou\nnowhere u\noverlay=dead,unc,duke research honey\n")
	var out strings.Builder
	if err := d.serveConn(in, &out); err != nil {
		t.Fatal(err)
	}

	samples := scrapeMetrics(t, d)

	// Request histogram: the line surface counts every line-protocol
	// request (4); the what-if form is additionally timed individually
	// under the whatif surface.
	lineCount := metricValue(t, samples, "routed_request_seconds_count", map[string]string{"surface": "line"})
	if lineCount != 4 {
		t.Errorf("line request count = %v, want 4", lineCount)
	}
	wfCount := metricValue(t, samples, "routed_request_seconds_count", map[string]string{"surface": "whatif"})
	if wfCount != 1 {
		t.Errorf("whatif request count = %v, want 1", wfCount)
	}

	// Resolver counters, read live off the store.
	st := d.store.DB().Stats()
	if got := metricValue(t, samples, "routed_resolves_total", map[string]string{"outcome": "hit"}); got != float64(st.Hits) {
		t.Errorf("hit counter = %v, store says %d", got, st.Hits)
	}
	if got := metricValue(t, samples, "routed_resolves_total", map[string]string{"outcome": "miss"}); got != float64(st.Misses) {
		t.Errorf("miss counter = %v, store says %d", got, st.Misses)
	}

	// Engine and what-if families exist with sane values.
	if got := metricValue(t, samples, "routed_map_generation", nil); got < 1 {
		t.Errorf("map generation = %v, want >= 1", got)
	}
	if got := metricValue(t, samples, "routed_remap_updates_total", map[string]string{"result": "changed"}); got < 1 {
		t.Errorf("changed updates = %v, want >= 1", got)
	}
	if got := metricValue(t, samples, "routed_whatif_cache_total", map[string]string{"event": "miss"}); got < 1 {
		t.Errorf("whatif cache misses = %v, want >= 1 after an overlay eval", got)
	}
	if got := metricValue(t, samples, "routed_routes", nil); got != float64(d.store.Len()) {
		t.Errorf("routed_routes = %v, store has %d", got, d.store.Len())
	}
	if got := metricValue(t, samples, "routed_overlay_eval_seconds_count", map[string]string{"result": "cold"}); got < 1 {
		t.Errorf("cold overlay evals = %v, want >= 1", got)
	}

	// Build identity.
	if got := metricValue(t, samples, "routed_build_info", map[string]string{"version": "test-build"}); got != 1 {
		t.Errorf("routed_build_info = %v, want 1", got)
	}
	if got := metricValue(t, samples, "routed_image_info", map[string]string{"path": "some/routes.rdb"}); got != 1 {
		t.Errorf("routed_image_info = %v, want 1", got)
	}

	// /stats carries the identity fields and a latency summary that
	// agrees with the histogram count.
	srv := httptest.NewServer(d.handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "uptime_secs", "generation", "latency"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing %q: %v", key, stats)
		}
	}
	lat, _ := stats["latency"].(map[string]any)
	line, _ := lat["line"].(map[string]any)
	if line == nil || line["count"] != float64(4) {
		t.Errorf("/stats latency.line = %v, want count 4", lat)
	}
}

// TestReadyzLifecycle walks /readyz through both 503 windows: the
// warm-start window (engine still computing) and a real audit demotion
// (a published image that passes the open-path checks but fails deep
// verification).
func TestReadyzLifecycle(t *testing.T) {
	d := newTestMapDaemon(t)
	srv := httptest.NewServer(d.handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("ready daemon: /readyz = %d, want 200", code)
	}

	// Warm-start window: the engine's first computation has not landed.
	warming := true
	d.mapReady = func() bool { return !warming }
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "warming up") {
		t.Fatalf("warming: /readyz = %d %q, want 503 warming up", code, body)
	}
	warming = false
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("warmed: /readyz = %d, want 200", code)
	}

	// Audit demotion, through the real path: serve a corrupt image,
	// wait for the background deep verification to demote.
	dir := t.TempDir()
	bad := corruptHiddenEntry(t, batchImage(t, testMapSrc))
	badPath := filepath.Join(dir, "routes.rdb")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	bd, err := newDaemon(badPath, true, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatalf("corrupt image should open (checks are deferred): %v", err)
	}
	bd.audits.Wait()
	if !bd.demoted.Load() {
		t.Fatal("audit did not demote the corrupt image")
	}
	bsrv := httptest.NewServer(bd.handler())
	defer bsrv.Close()
	resp, err := bsrv.Client().Get(bsrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || !strings.Contains(string(body), "demoted") {
		t.Fatalf("demoted daemon: /readyz = %d %q, want 503 demoted", resp.StatusCode, body)
	}
	if got := bd.metrics.demotions.Load(); got != 1 {
		t.Errorf("demotion counter = %d, want 1", got)
	}

	// A good image replacing the bad one clears the demotion on swap.
	if err := os.WriteFile(badPath+".tmp", batchImage(t, testMapSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(badPath+".tmp", badPath); err != nil {
		t.Fatal(err)
	}
	if err := bd.reload(); err != nil {
		t.Fatal(err)
	}
	bd.audits.Wait()
	resp, err = bsrv.Client().Get(bsrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("after good swap: /readyz = %d, want 200", resp.StatusCode)
	}
}

// TestTraceLifecycle checks that every effective re-map generation
// leaves a stage trace whose stages account for the generation's wall
// time, that no-op re-maps leave none, and that the trace is reachable
// through all three surfaces: the ring, the `trace` command, and
// GET /lastmap.
func TestTraceLifecycle(t *testing.T) {
	dir := t.TempDir()
	mapPath := filepath.Join(dir, "test.map")
	if err := os.WriteFile(mapPath, []byte(testMapSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	d := newMapDaemon(routedb.Options{}, io.Discard)
	w, err := newMapWatcher(d, "unc", 8, []string{mapPath}, "", false)
	if err != nil {
		t.Fatal(err)
	}

	checkTrace := func(tr *obs.Trace, wantGen uint64) {
		t.Helper()
		if tr == nil {
			t.Fatal("no trace recorded")
		}
		if tr.Gen != wantGen {
			t.Errorf("trace gen = %d, want %d", tr.Gen, wantGen)
		}
		if len(tr.Stages) == 0 {
			t.Fatal("trace has no stages")
		}
		names := make([]string, 0, len(tr.Stages))
		for _, s := range tr.Stages {
			names = append(names, s.Name)
		}
		for _, want := range []string{"read", "scan", "map", "store"} {
			found := false
			for _, n := range names {
				if n == want {
					found = true
				}
			}
			if !found {
				t.Errorf("trace stages %v missing %q", names, want)
			}
		}
		// The stages account for the wall time: exactly when an "other"
		// remainder was appended, within measurement jitter otherwise.
		diff := tr.SumStages() - tr.Wall
		if diff < 0 {
			diff = -diff
		}
		if slop := tr.Wall/10 + time.Millisecond; diff > slop {
			t.Errorf("stages sum %v vs wall %v: off by %v (> %v)", tr.SumStages(), tr.Wall, diff, slop)
		}
	}

	// The constructor's initial map is generation 1.
	checkTrace(d.traces.Last(), 1)

	// A route-changing edit records generation 2.
	edited := strings.Replace(testMapSrc, "unc\tduke(HOURLY)", "unc\tduke(WEEKLY*10)", 1)
	if err := os.WriteFile(mapPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.remap(); err != nil {
		t.Fatal(err)
	}
	tr := d.traces.Last()
	checkTrace(tr, 2)
	if tr.Seq != 2 {
		t.Errorf("second trace seq = %d, want 2", tr.Seq)
	}

	// Re-mapping unchanged inputs is a no-op: no new trace.
	if err := w.remap(); err != nil {
		t.Fatal(err)
	}
	if got := d.traces.Last().Seq; got != 2 {
		t.Errorf("no-op remap recorded trace seq %d", got)
	}

	// The `trace` line command renders the newest trace.
	reply, closing := d.handleLine("trace")
	if closing || !strings.HasPrefix(reply, "ok gen=2 ") {
		t.Errorf("trace command = %q, %v", reply, closing)
	}
	for _, field := range []string{"path=", "wall=", "scan=", "routes="} {
		if !strings.Contains(reply, field) {
			t.Errorf("trace line %q missing %q", reply, field)
		}
	}

	// GET /lastmap returns the newest trace as JSON; ?n= the recent list.
	srv := httptest.NewServer(d.handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/lastmap")
	if err != nil {
		t.Fatal(err)
	}
	var got obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Gen != 2 || len(got.Stages) == 0 {
		t.Errorf("/lastmap = gen %d, %d stages; want gen 2 with stages", got.Gen, len(got.Stages))
	}
	resp, err = srv.Client().Get(srv.URL + "/lastmap?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var recent []obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&recent); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(recent) != 2 || recent[0].Gen != 2 || recent[1].Gen != 1 {
		t.Errorf("/lastmap?n=5 = %d traces, want [gen 2, gen 1]", len(recent))
	}

	// Outside -map mode both surfaces refuse clearly.
	pd, err := newDaemon(writeRoutes(t, t.TempDir(), testRoutes), false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if reply, _ := pd.handleLine("trace"); reply != "err re-map traces require -map mode" {
		t.Errorf("-d mode trace command = %q", reply)
	}
}

// TestStatsLatencyFields: once the line surface has samples, the stats
// line and /stats JSON carry the latency summary — and not before,
// which TestStdinProtocol pins by exact match.
func TestStatsLatencyFields(t *testing.T) {
	path := writeRoutes(t, t.TempDir(), testRoutes)
	d, err := newDaemon(path, false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if line := d.statsLine(); strings.Contains(line, "line_p50=") {
		t.Errorf("unsampled stats line already has latency: %q", line)
	}
	var out strings.Builder
	if err := d.serveConn(strings.NewReader("duke honey\nunc lou\n"), &out); err != nil {
		t.Fatal(err)
	}
	line := d.statsLine()
	for _, field := range []string{"line_reqs=2", "line_p50=", "line_p99="} {
		if !strings.Contains(line, field) {
			t.Errorf("stats line %q missing %q", line, field)
		}
	}
	snap := d.snapshot()
	if snap.Latency["line"].Count != 2 {
		t.Errorf("snapshot latency = %+v, want line count 2", snap.Latency)
	}
}

// TestMetricsOverhead pins the serve-path cost of the telemetry: the
// same pipelined batch workload through an instrumented daemon and one
// with metrics stripped. The issue budgets ~5%; the assertion leaves
// headroom for scheduler noise on shared runners. Skipped under -short
// (the CI race job); the serve-bench job runs it explicitly.
func TestMetricsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; run without -short")
	}
	path := writeRoutes(t, t.TempDir(), testRoutes)
	mk := func(strip bool) *daemon {
		d, err := newDaemon(path, false, routedb.Options{}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if strip {
			d.metrics = nil
		}
		return d
	}
	instr, bare := mk(false), mk(true)

	var batch strings.Builder
	for i := 0; i < 2000; i++ {
		batch.WriteString("duke honey\ncaip.rutgers.edu pleasant\nunc lou\n")
	}
	input := batch.String()
	run := func(d *daemon) time.Duration {
		start := time.Now()
		if err := d.serveConn(strings.NewReader(input), io.Discard); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Interleave rounds so frequency scaling and background noise hit
	// both daemons alike; compare medians.
	const rounds = 9
	instrTimes := make([]time.Duration, 0, rounds)
	bareTimes := make([]time.Duration, 0, rounds)
	run(instr)
	run(bare) // warm-up
	for i := 0; i < rounds; i++ {
		instrTimes = append(instrTimes, run(instr))
		bareTimes = append(bareTimes, run(bare))
	}
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	mi, mb := median(instrTimes), median(bareTimes)
	ratio := float64(mi) / float64(mb)
	t.Logf("instrumented %v vs bare %v: ratio %.3f (target <= 1.05, asserting <= 1.25)", mi, mb, ratio)
	if ratio > 1.25 {
		t.Errorf("metrics overhead ratio %.3f: instrumented %v vs bare %v", ratio, mi, mb)
	}
}

// TestSlowQueryLog: a threshold of one nanosecond makes every measured
// query slow; the log names the surface and the request, and the
// counter advances. The pipelined plain-resolve path is never measured
// per request and must stay silent.
func TestSlowQueryLog(t *testing.T) {
	dir := t.TempDir()
	mapPath := filepath.Join(dir, "test.map")
	if err := os.WriteFile(mapPath, []byte(testMapSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	var logBuf strings.Builder
	d := newMapDaemon(routedb.Options{}, &logBuf)
	if _, err := newMapWatcher(d, "unc", 8, []string{mapPath}, "", false); err != nil {
		t.Fatal(err)
	}
	d.slowThresh = time.Nanosecond

	var out strings.Builder
	in := strings.NewReader("duke honey\noverlay=dead,unc,duke research honey\n")
	if err := d.serveConn(in, &out); err != nil {
		t.Fatal(err)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "slow query") || !strings.Contains(logs, "overlay=dead,unc,duke") {
		t.Errorf("slow what-if not logged: %q", logs)
	}
	if strings.Contains(logs, "duke honey") {
		t.Errorf("pipelined plain resolve wrongly in the slow log: %q", logs)
	}
	if got := d.metrics.slow.Load(); got != 1 {
		t.Errorf("slow counter = %d, want 1 (the what-if form only)", got)
	}
}

// TestLogLevelGate: the -log-level machinery actually gates output —
// Info messages vanish at warn level, warnings survive.
func TestLogLevelGate(t *testing.T) {
	var buf strings.Builder
	d := newMapDaemon(routedb.Options{}, &buf)
	d.logf("info message %d", 1)
	d.warnf("warn message %d", 2)
	if !strings.Contains(buf.String(), "info message 1") || !strings.Contains(buf.String(), "warn message 2") {
		t.Fatalf("default level lost messages: %q", buf.String())
	}
	buf.Reset()
	d.logLvl.Set(slog.LevelWarn)
	d.logf("info message %d", 3)
	d.warnf("warn message %d", 4)
	if strings.Contains(buf.String(), "info message 3") {
		t.Errorf("warn level leaked info: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "warn message 4") {
		t.Errorf("warn level dropped warning: %q", buf.String())
	}
}

// TestRunBadLogLevel: flag validation fails fast.
func TestRunBadLogLevel(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-d", "x.db", "-stdin", "-log-level", "noisy"}, strings.NewReader(""), &out, &errw)
	if code != 2 || !strings.Contains(errw.String(), "bad -log-level") {
		t.Errorf("run = %d, stderr %q", code, errw.String())
	}
}
