package main

// Source-watch mode (-map): instead of serving a precompiled routes.db,
// routed owns the whole pipeline. Map sources are loaded zero-copy
// (mmap), routes are computed in-process by the incremental multi-source
// engine, and on every source edit only the changed files are re-scanned
// and only the affected region of the network is re-mapped, once for the
// shared graph and then warmly per vantage — every resolver store
// hot-swaps in milliseconds where a batch rebuild took the better part
// of a second, and a cron'd pathalias|mkdb pipeline took minutes.
//
// Vantages beyond the default (-l) spin up lazily on the first
// from=<host> query: the shared fragment cache, graph, and CSR snapshot
// are already warm, so a new vantage costs one mapping run, not a
// re-parse. Each vantage keeps its own hot-swappable store; a source
// edit re-maps the resident vantages and swaps all their stores.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"pathalias/internal/atomicfile"
	"pathalias/internal/core"
	"pathalias/internal/fswatch"
	"pathalias/internal/mapper"
	"pathalias/internal/obs"
	"pathalias/internal/remap"
	"pathalias/internal/routedb"
	"pathalias/internal/whatif"
)

// fileSig is one watched source's last observed stat signature.
type fileSig struct {
	mtime time.Time
	size  int64
}

// mapWatcher drives a multi-source remap engine over a set of map
// source files and swaps the results into the daemon's stores: the
// default store for the -l vantage, one registered store per from=
// vantage.
type mapWatcher struct {
	d     *daemon
	eng   *remap.Multi
	local string // folded default vantage name
	paths []string
	sigs  []fileSig

	// mu guards stores and is held across a lazy store's compute+register
	// and across remap's swap pass, so the two cannot interleave: without
	// that, a store built from a pre-edit Result could register just
	// after the swap pass skipped its (then absent) entry and pin stale
	// routes until the next edit. Lock order is mu before the engine's
	// internal lock (both paths call eng.ResultFor while holding mu).
	mu     sync.Mutex
	stores map[string]*routedb.Store

	// gens records the RouteGen each store (the default under the local
	// host's name) was last built from, so a re-map that did not change a
	// vantage's entries — a pure warm no-op for that source, the common
	// case when one edit touches one corner of the network — skips that
	// store's rebuild and swap entirely.
	gens map[string]uint64

	// odb is the compiled database continuously republished from the
	// default vantage ("" = none); pubGen/pubOK track the RouteGen of the
	// last published image so no-op re-maps publish nothing. Guarded by
	// mu (only remap, which holds it, touches them).
	odb    string
	pubGen uint64
	pubOK  bool

	// ready is closed once the engine's first computation has landed (or
	// definitively failed). On a warm start the initial re-map runs in the
	// background while the daemon serves the last published image;
	// d.mapReady reads this channel to gate the queries that need the
	// live engine.
	ready chan struct{}
}

// newMapWatcher builds the engine and performs the initial full map
// computation. Cold (warm=false), the computation is synchronous: the
// daemon does not serve until the first database is swapped in, and an
// initial-map error is fatal. Warm, the daemon is already serving the
// last published image, so the initial computation runs in the
// background and swaps the live engine's database in when it lands;
// until then d.mapReady gates the engine-backed query forms.
func newMapWatcher(d *daemon, localHost string, maxVantages int, paths []string, odb string, warm bool) (*mapWatcher, error) {
	if d.opts.FoldCase {
		localHost = strings.ToLower(localHost)
	}
	eng, err := remap.NewMulti(remap.Options{
		LocalHost:   localHost,
		Mapper:      func() *mapper.Options { o := mapper.DefaultOptions(); return &o }(),
		FoldCase:    d.opts.FoldCase,
		MaxVantages: maxVantages,
	})
	if err != nil {
		return nil, err
	}
	w := &mapWatcher{
		d:      d,
		eng:    eng,
		local:  localHost,
		paths:  paths,
		sigs:   make([]fileSig, len(paths)),
		stores: make(map[string]*routedb.Store),
		gens:   make(map[string]uint64),
		odb:    odb,
		ready:  make(chan struct{}),
	}
	d.vantage = w.storeFor
	wopts := whatif.Options{FoldCase: d.opts.FoldCase}
	if d.metrics != nil {
		// Every overlay evaluation lands in the cold or cached latency
		// histogram; the evaluator reports which path it actually took
		// (a concurrent identical evaluation counts as cached).
		mm := d.metrics
		wopts.Observe = func(cold bool, dur time.Duration) {
			if cold {
				mm.overlayCold.Observe(dur)
			} else {
				mm.overlayCached.Observe(dur)
			}
		}
	}
	d.whatif = whatif.New(eng, wopts)
	d.defaultVantage = localHost
	d.residentVantages = w.residentCounts
	d.generation = eng.Generation
	if d.metrics != nil {
		d.metrics.registerMapMetrics(eng, d.whatif)
	}
	d.mapReady = func() bool {
		select {
		case <-w.ready:
			return true
		default:
			return false
		}
	}
	if !warm {
		defer close(w.ready)
		if err := w.remap(); err != nil {
			return nil, err
		}
		return w, nil
	}
	go func() {
		defer close(w.ready)
		if err := w.remap(); err != nil {
			d.logf("initial map: %v (still serving the published image)", err)
		}
	}()
	return w, nil
}

// residentCounts reports each resident vantage's served route count for
// /stats: the default store under the -l host's name plus every
// lazily-registered vantage store.
func (w *mapWatcher) residentCounts() map[string]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]int, len(w.stores)+1)
	out[w.local] = w.d.store.Len()
	for name, st := range w.stores {
		out[name] = st.Len()
	}
	return out
}

// fold normalizes a vantage name under the daemon's case policy, so the
// store registry does not split on query spelling.
func (w *mapWatcher) fold(host string) string {
	if w.d.opts.FoldCase {
		return strings.ToLower(host)
	}
	return host
}

// storeFor serves a from=<host> query: the default store for the -l
// vantage, an existing per-vantage store, or a lazily created one (the
// first query for a vantage computes it over the already-warm shared
// engine state).
func (w *mapWatcher) storeFor(from string) (*routedb.Store, error) {
	from = w.fold(from)
	if from == w.local {
		return w.d.store, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if st := w.stores[from]; st != nil {
		return st, nil
	}
	res, err := w.eng.ResultFor(from)
	if err != nil {
		return nil, fmt.Errorf("vantage %s: %w", from, err)
	}
	st := routedb.NewStore(routedb.BuildWith(res.Entries, w.d.opts))
	w.stores[from] = st
	w.gens[from] = res.RouteGen
	w.d.logf("vantage %s: %d routes (lazy spin-up)", from, st.Len())
	return st, nil
}

// remap runs the engine over the current file contents and swaps every
// resident vantage's store. Unchanged files are deduplicated inside the
// engine by content hash, so calling this on suspicion is cheap. Every
// effective generation records a stage trace (obs.Trace) in the
// daemon's ring: where the wall time went — read, scan, patch,
// snapshot, map, store swaps, publish — plus the shape of the change.
func (w *mapWatcher) remap() error {
	start := time.Now()
	ins, err := core.ReadInputsMmap(w.paths)
	if err != nil {
		return err
	}
	for i, p := range w.paths {
		if fi, err := os.Stat(p); err == nil {
			w.sigs[i] = fileSig{mtime: fi.ModTime(), size: fi.Size()}
		}
	}
	rins := make([]remap.Input, len(ins))
	for i, in := range ins {
		rins[i] = remap.Input{Name: in.Name, Src: in.Src, Release: in.Release}
	}
	readDur := time.Since(start)
	// Update owns the inputs from here on, success or error (it may
	// retain some of them in its caches even when it fails).
	statsBefore := w.eng.Stats()
	if err := w.eng.Update(rins); err != nil {
		return err
	}
	stats := w.eng.Stats()
	if w.d.swaps.Load() > 0 && stats.Unchanged > statsBefore.Unchanged {
		return nil // identical inputs: nothing to swap, no generation
	}

	// Swap the default store, then every resident vantage's — each
	// vantage independently: one whose host vanished (including the
	// default) keeps serving its previous database while the others
	// still pick up the edit. The lock covers the whole pass so a lazy
	// storeFor cannot register a pre-edit store the pass would miss.
	w.mu.Lock()
	defer w.mu.Unlock()
	storeMark := time.Now()
	var pubDur time.Duration
	published := false
	routes := 0
	skipped := 0
	res, defErr := w.eng.ResultFor(w.local)
	if defErr == nil {
		for _, warn := range res.Warnings {
			w.d.logf("map: %s", warn)
		}
		if res.RouteGen == w.gens[w.local] && w.d.swaps.Load() > 0 {
			// The edit re-mapped but this vantage's entries came out
			// identical: the served database is already exact.
			routes = w.d.store.Len()
			skipped++
		} else {
			db := routedb.BuildWith(res.Entries, w.d.opts)
			routes = db.Len()
			w.d.store.Swap(db)
			w.gens[w.local] = res.RouteGen
			w.d.mu.Lock()
			w.d.loadedAt = time.Now()
			w.d.mu.Unlock()
			w.d.swaps.Add(1)
			w.d.demoted.Store(false)
		}
	} else {
		w.d.warnf("vantage %s (default): %v (still serving previous database)", w.local, defErr)
	}
	if w.odb != "" && defErr == nil && (!w.pubOK || res.RouteGen != w.pubGen) {
		pubMark := time.Now()
		if err := w.publish(res.RouteGen); err != nil {
			w.d.warnf("publish %s: %v (previous image still intact)", w.odb, err)
		} else {
			published = true
		}
		pubDur = time.Since(pubMark)
	}

	resident := w.eng.Vantages()
	live := make(map[string]bool, len(resident))
	swapped := 0
	for _, from := range resident {
		live[from] = true
		st := w.stores[from]
		if st == nil {
			continue // default (has its own store above) or never queried
		}
		vres, err := w.eng.ResultFor(from)
		if err != nil {
			w.d.warnf("vantage %s: %v (still serving previous database)", from, err)
			continue
		}
		if vres.RouteGen == w.gens[from] {
			skipped++ // entries unchanged: the current store is exact
			continue
		}
		st.Swap(routedb.BuildWith(vres.Entries, w.d.opts))
		w.gens[from] = vres.RouteGen
		swapped++
	}
	// Stores of evicted vantages are dropped; a later query re-creates
	// both the vantage and its store.
	for name := range w.stores {
		if !live[name] {
			delete(w.stores, name)
			delete(w.gens, name)
		}
	}

	warm := stats.Incremental - statsBefore.Incremental
	full := stats.FullRemaps - statsBefore.FullRemaps
	storeDur := time.Since(storeMark) - pubDur
	wall := time.Since(start)
	w.d.logf("mapped %d routes from %d files (+%d vantage stores, %d unchanged; %d warm/%d full re-maps) in %v",
		routes, len(w.paths), swapped, skipped, warm, full, wall.Round(time.Millisecond))
	w.recordTrace(start, wall, readDur, storeDur, pubDur, published, warm, full, routes)
	return defErr
}

// recordTrace assembles the generation's stage trace. The engine's
// per-phase timing (scan/patch/snapshot/map) is read after the swap
// pass so lazy vantage catch-ups count into the map sums; whatever the
// named stages do not account for — scheduling, logging, bookkeeping —
// is closed out as an explicit "other" stage, so the stages always sum
// to the generation's wall time.
func (w *mapWatcher) recordTrace(start time.Time, wall, readDur, storeDur, pubDur time.Duration, published bool, warm, full, routes int) {
	if w.d.traces == nil {
		return
	}
	timing := w.eng.Timing()
	stages := []obs.Stage{
		{Name: "read", Dur: readDur},
		{Name: "scan", Dur: timing.Scan},
		{Name: "patch", Dur: timing.Patch},
		{Name: "snapshot", Dur: timing.Snapshot},
		{Name: "map", Dur: timing.Map, Note: fmt.Sprintf("across vantages: mapping %v + route derivation %v",
			timing.MapSum.Round(time.Microsecond), timing.RouteSum.Round(time.Microsecond))},
		{Name: "store", Dur: storeDur},
		{Name: "publish", Dur: pubDur},
	}
	var accounted time.Duration
	for _, s := range stages {
		accounted += s.Dur
	}
	if other := wall - accounted; other > 0 {
		stages = append(stages, obs.Stage{Name: "other", Dur: other})
	}
	tr := &obs.Trace{
		Gen:          w.eng.Generation(),
		Start:        start,
		Wall:         wall,
		Path:         timing.Path,
		Warm:         warm,
		Full:         full,
		Nodes:        timing.Nodes,
		NodesTouched: timing.NodesTouched,
		LinksTouched: timing.LinksTouched,
		Rescanned:    timing.Rescanned,
		Routes:       routes,
		Published:    published,
		Stages:       stages,
	}
	w.d.traces.Add(tr)
	w.d.log.Debug("remap trace", "trace", tr.Line())
}

// publish writes the default store's database — which at this point
// serves exactly the entries of the route generation gen — to w.odb,
// atomically and durably (see internal/atomicfile): a crash at any
// point leaves either the previous image or the new one, never a torn
// file. The caller has already established that gen differs from the
// last published generation, so every call here is a route change —
// except the first after a warm start, where the image on disk usually
// IS the current routes: that case is detected by byte comparison and
// adopted without a write, so a restart alone never churns the file.
// w.mu must be held (pubGen/pubOK are guarded by it).
func (w *mapWatcher) publish(gen uint64) error {
	db := w.d.store.DB()
	var buf bytes.Buffer
	if _, err := db.WriteBinary(&buf); err != nil {
		return err
	}
	if !w.pubOK {
		if old, err := os.ReadFile(w.odb); err == nil && bytes.Equal(old, buf.Bytes()) {
			w.pubGen, w.pubOK = gen, true
			return nil // warm restart: the on-disk image is already exact
		}
	}
	if err := atomicfile.Publish(w.odb, func(out io.Writer) error {
		_, err := out.Write(buf.Bytes())
		return err
	}); err != nil {
		return err
	}
	w.pubGen, w.pubOK = gen, true
	w.d.logf("published %s (%d routes)", w.odb, db.Len())
	return nil
}

// changed reports whether any watched source looks different: a (mtime,
// size) change, or a recent-enough mtime that a same-second rewrite
// could hide behind it (the engine's content hashes resolve those).
func (w *mapWatcher) changed() bool {
	for i, p := range w.paths {
		fi, err := os.Stat(p)
		if err != nil {
			return true // vanished or unreadable: let remap surface it
		}
		if !fi.ModTime().Equal(w.sigs[i].mtime) || fi.Size() != w.sigs[i].size {
			return true
		}
		if time.Since(fi.ModTime()) <= staleSettle {
			return true // content hash inside the engine decides
		}
	}
	return false
}

// watch re-maps when a source changes — on a kernel file event when the
// platform has them (fswatch), at the poll interval otherwise. Errors (a
// mid-edit syntax error, a vanished file) are logged and the previous
// databases keep serving — exactly like the -d watcher.
func (w *mapWatcher) watch(ctx context.Context, interval time.Duration) {
	// On a warm start the initial computation is still running in its own
	// goroutine; it owns the engine until ready closes. Join it before
	// watching — and before an early shutdown's eng.Close, which must not
	// race it.
	select {
	case <-w.ready:
	case <-ctx.Done():
		<-w.ready
		w.eng.Close()
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	var kicks <-chan struct{} // nil without event support: never ready
	if fw, err := fswatch.New(w.paths); err == nil {
		defer fw.Close()
		kicks = fw.Kicks()
		w.d.logf("watching %d map sources via file events (poll every %v as fallback)",
			len(w.paths), interval)
	}
	for {
		select {
		case <-ctx.Done():
			w.eng.Close()
			return
		case <-t.C:
		case <-kicks:
		}
		if !w.changed() {
			continue
		}
		if err := w.remap(); err != nil {
			w.d.logf("remap: %v (still serving previous database)", err)
		}
	}
}
