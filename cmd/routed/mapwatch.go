package main

// Source-watch mode (-map): instead of serving a precompiled routes.db,
// routed owns the whole pipeline. Map sources are loaded zero-copy
// (mmap), routes are computed in-process by the incremental re-map
// engine, and on every source edit only the changed files are re-scanned
// and only the affected region of the network is re-mapped — the
// resolver store hot-swaps in milliseconds where a batch rebuild took
// the better part of a second, and a cron'd pathalias|mkdb pipeline took
// minutes.

import (
	"context"
	"os"
	"strings"
	"time"

	"pathalias/internal/core"
	"pathalias/internal/mapper"
	"pathalias/internal/remap"
	"pathalias/internal/routedb"
)

// fileSig is one watched source's last observed stat signature.
type fileSig struct {
	mtime time.Time
	size  int64
}

// mapWatcher drives a remap engine over a set of map source files and
// swaps the results into a daemon's store.
type mapWatcher struct {
	d     *daemon
	eng   *remap.Engine
	paths []string
	sigs  []fileSig
}

// newMapWatcher builds the engine, performs the initial full map
// computation, and swaps the first database in.
func newMapWatcher(d *daemon, localHost string, paths []string) (*mapWatcher, error) {
	if d.opts.FoldCase {
		localHost = strings.ToLower(localHost)
	}
	eng, err := remap.NewEngine(remap.Options{
		LocalHost: localHost,
		Mapper:    func() *mapper.Options { o := mapper.DefaultOptions(); return &o }(),
		FoldCase:  d.opts.FoldCase,
	})
	if err != nil {
		return nil, err
	}
	w := &mapWatcher{d: d, eng: eng, paths: paths, sigs: make([]fileSig, len(paths))}
	if err := w.remap(); err != nil {
		return nil, err
	}
	return w, nil
}

// remap runs the engine over the current file contents and swaps the
// result in. Unchanged files are deduplicated inside the engine by
// content hash, so calling this on suspicion is cheap.
func (w *mapWatcher) remap() error {
	start := time.Now()
	ins, err := core.ReadInputsMmap(w.paths)
	if err != nil {
		return err
	}
	for i, p := range w.paths {
		if fi, err := os.Stat(p); err == nil {
			w.sigs[i] = fileSig{mtime: fi.ModTime(), size: fi.Size()}
		}
	}
	rins := make([]remap.Input, len(ins))
	for i, in := range ins {
		rins[i] = remap.Input{Name: in.Name, Src: in.Src, Release: in.Release}
	}
	// Update owns the inputs from here on, success or error (it may
	// retain some of them in its caches even when it fails).
	unchangedBefore := w.eng.Stats.Unchanged
	res, err := w.eng.Update(rins)
	if err != nil {
		return err
	}
	if w.d.swaps.Load() > 0 && w.eng.Stats.Unchanged > unchangedBefore {
		return nil // identical inputs: nothing to swap
	}
	for _, warn := range res.Warnings {
		w.d.logf("map: %s", warn)
	}
	db := routedb.BuildWith(res.Entries, w.d.opts)
	w.d.store.Swap(db)
	w.d.mu.Lock()
	w.d.loadedAt = time.Now()
	w.d.mu.Unlock()
	w.d.swaps.Add(1)
	mode := "full"
	if res.Incremental {
		mode = "incremental"
	}
	w.d.logf("mapped %d routes from %d files (%s) in %v",
		db.Len(), len(w.paths), mode, time.Since(start).Round(time.Millisecond))
	return nil
}

// changed reports whether any watched source looks different: a (mtime,
// size) change, or a recent-enough mtime that a same-second rewrite
// could hide behind it (the engine's content hashes resolve those).
func (w *mapWatcher) changed() bool {
	for i, p := range w.paths {
		fi, err := os.Stat(p)
		if err != nil {
			return true // vanished or unreadable: let remap surface it
		}
		if !fi.ModTime().Equal(w.sigs[i].mtime) || fi.Size() != w.sigs[i].size {
			return true
		}
		if time.Since(fi.ModTime()) <= staleSettle {
			return true // content hash inside the engine decides
		}
	}
	return false
}

// watch polls the sources and re-maps on change. Errors (a mid-edit
// syntax error, a vanished file) are logged and the previous database
// keeps serving — exactly like the -d watcher.
func (w *mapWatcher) watch(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			w.eng.Close()
			return
		case <-t.C:
			if !w.changed() {
				continue
			}
			if err := w.remap(); err != nil {
				w.d.logf("remap: %v (still serving previous database)", err)
			}
		}
	}
}
