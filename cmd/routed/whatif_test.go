package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathalias/internal/mapper"
	"pathalias/internal/parser"
	"pathalias/internal/printer"
	"pathalias/internal/routedb"
	"pathalias/internal/simnet"
	"pathalias/internal/whatif"
)

// newTestMapDaemon spins a -map daemon over testMapSrc with vantage unc.
func newTestMapDaemon(t *testing.T) *daemon {
	t.Helper()
	dir := t.TempDir()
	mapPath := filepath.Join(dir, "test.map")
	if err := os.WriteFile(mapPath, []byte(testMapSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	d := newMapDaemon(routedb.Options{}, io.Discard)
	if _, err := newMapWatcher(d, "unc", 8, []string{mapPath}, "", false); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestWhatIfProtocol drives the what-if line grammar end to end: overlay
// resolves, explain, impact, and — satellite of the fuzz work — every
// hostile input answered with an err reply on a connection that stays
// open.
func TestWhatIfProtocol(t *testing.T) {
	d := newTestMapDaemon(t)
	cases := []struct{ line, want string }{
		// Base resolve unchanged.
		{"research honey", "ok duke!research!honey"},
		// With unc!duke dead the first hop detours through phs.
		{"overlay=dead,unc,duke research honey", "ok phs!duke!research!honey"},
		// Space-separated spec works when quoted into one logical line
		// position — the comma form is the single-token rendering.
		{"from=duke overlay=dead,duke,research ucbvax honey", "ok err"},
		// Explain: base only, then base plus overlay.
		{"explain research", "ok route duke!research!%s cost 3000; unc !> duke link 500 total 500 (link h1 r0); duke !> research link 2500 total 3000 (link h2 r2)"},
		// Impact: the detour re-routes everything that rode unc!duke.
		{"impact overlay=dead,unc,duke", "ok gen=1 routes=5 changed=4 added=0 removed=0 rerouted=4 recosted=0 duke:rerouted phs:rerouted research:rerouted ucbvax:rerouted"},
		// Hostile inputs: all answered, never dropped.
		{"overlay= research", "err whatif: empty overlay spec"},
		{"overlay=dead,unc research", "err whatif: dead wants 2 arguments, got 1"},
		{"overlay=dead,unc,nosuch research", `err whatif: unknown host "nosuch"`},
		{"overlay=cost,unc,research,5 research", "err whatif: no link unc!research"},
		{"overlay=link,unc,duke,5 research", "err whatif: link unc!duke already exists (use cost to override)"},
		{"overlay=dead,unc,duke,extra research", "err whatif: dead wants 2 arguments, got 3"},
		{"impact", "err want: impact [from=host] overlay=spec"},
		{"explain", "err want: explain [from=host] [overlay=spec] dest"},
		{"explain nosuchhost", `ok no route (routedb: no route to "nosuchhost")`},
		{"impact overlay=dead,a,a", "err whatif: self-link a a"},
	}
	for _, c := range cases {
		got, closing := d.handleLine(c.line)
		if c.want == "ok err" {
			// from=duke with duke!research dead: ucbvax is unreachable
			// (no other path in testMapSrc), so the resolve errors — but
			// it must still be an err reply.
			if !strings.HasPrefix(got, "err ") {
				t.Errorf("handleLine(%q) = %q, want an err reply", c.line, got)
			}
			continue
		}
		if got != c.want || closing {
			t.Errorf("handleLine(%q) = %q (closing=%v), want %q", c.line, got, closing, c.want)
		}
	}

	// The overlaid explain carries both sides.
	got, _ := d.handleLine("explain overlay=dead,unc,duke research")
	if !strings.HasPrefix(got, "ok base: route duke!research!%s cost 3000") ||
		!strings.Contains(got, "|| overlay: route phs!duke!research!%s cost 5000") {
		t.Errorf("overlaid explain = %q", got)
	}

	// The same grammar through a live pipelined connection: hostile lines
	// interleaved with good ones, one reply per line, connection intact.
	var out bytes.Buffer
	in := strings.NewReader(
		"overlay=dead,unc,nosuch research\n" +
			"overlay=kill,unc,duke research\n" +
			"overlay=dead,unc,duke research honey\n" +
			"impact overlay=dead,unc,duke\n" +
			"quit\n")
	if err := d.serveConn(in, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d replies: %q", len(lines), lines)
	}
	for i, prefix := range []string{"err ", "err ", "ok phs!duke!research!honey", "ok gen=", "ok bye"} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("reply %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}

	// Precompiled (-d) mode refuses what-if but keeps the connection.
	pd, err := newDaemon(writeRoutes(t, t.TempDir(), testRoutes), false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{"overlay=dead,a,b duke", "explain duke", "impact overlay=dead,a,b"} {
		if got, closing := pd.handleLine(line); got != "err what-if queries require -map mode" || closing {
			t.Errorf("-d mode handleLine(%q) = %q (closing=%v)", line, got, closing)
		}
	}
}

// TestWhatIfStatsShape checks the /stats JSON: -map mode carries the
// overlay cache counters and per-vantage resident route counts; -d mode's
// JSON shape is unchanged.
func TestWhatIfStatsShape(t *testing.T) {
	d := newTestMapDaemon(t)
	// Prime: one miss, one hit, one extra vantage.
	if _, err := d.whatif.Resolve("unc", "dead unc duke", "research", "h"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.whatif.Resolve("unc", "dead unc duke", "research", "h"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.storeFor("duke"); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(d.handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Routes int `json:"routes"`
		WhatIf *struct {
			Hits      uint64 `json:"hits"`
			Misses    uint64 `json:"misses"`
			Evictions uint64 `json:"evictions"`
			Resident  int    `json:"resident"`
		} `json:"whatif"`
		Vantages map[string]int `json:"vantages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.WhatIf == nil || snap.WhatIf.Hits != 1 || snap.WhatIf.Misses != 1 || snap.WhatIf.Resident != 1 {
		t.Errorf("whatif stats = %+v", snap.WhatIf)
	}
	if snap.Vantages["unc"] != 5 || snap.Vantages["duke"] != 5 || len(snap.Vantages) != 2 {
		t.Errorf("vantages = %v", snap.Vantages)
	}
	line := d.statsLine()
	if !strings.Contains(line, "whatif_hits=1") || !strings.Contains(line, "whatif_resident=1") ||
		!strings.Contains(line, "vantages=2") {
		t.Errorf("stats line = %q", line)
	}

	// -d mode: no whatif/vantages keys at all.
	pd, err := newDaemon(writeRoutes(t, t.TempDir(), testRoutes), false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(pd.handler())
	defer psrv.Close()
	presp, err := http.Get(psrv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	raw, _ := io.ReadAll(presp.Body)
	var keys map[string]any
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	if _, ok := keys["whatif"]; ok {
		t.Errorf("-d mode /stats grew a whatif key: %s", raw)
	}
	if _, ok := keys["vantages"]; ok {
		t.Errorf("-d mode /stats grew a vantages key: %s", raw)
	}
}

// TestWhatIfHTTP drives POST /whatif and the /route overlay parameter.
func TestWhatIfHTTP(t *testing.T) {
	d := newTestMapDaemon(t)
	srv := httptest.NewServer(d.handler())
	defer srv.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/whatif", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, strings.TrimSpace(string(b))
	}

	if code, body := post(`{"op":"resolve","overlay":"dead unc duke","dest":"research","user":"honey"}`); code != 200 ||
		body != `{"address":"phs!duke!research!honey"}` {
		t.Errorf("resolve: %d %s", code, body)
	}

	code, body := post(`{"op":"explain","overlay":"dead unc duke","dest":"research"}`)
	if code != 200 {
		t.Fatalf("explain: %d %s", code, body)
	}
	var exp whatif.ExplainResult
	if err := json.Unmarshal([]byte(body), &exp); err != nil {
		t.Fatal(err)
	}
	if !exp.Base.Found || exp.Base.Route != "duke!research!%s" || exp.Under == nil ||
		exp.Under.Route != "phs!duke!research!%s" || len(exp.Under.Hops) != 3 {
		t.Errorf("explain payload: base=%+v under=%+v", exp.Base, exp.Under)
	}

	code, body = post(`{"op":"impact","overlay":"dead unc duke"}`)
	if code != 200 {
		t.Fatalf("impact: %d %s", code, body)
	}
	var imp whatif.Impact
	if err := json.Unmarshal([]byte(body), &imp); err != nil {
		t.Fatal(err)
	}
	if imp.Spec != "dead unc duke" || len(imp.Changed) != 4 || imp.Stats.Rerouted != 4 {
		t.Errorf("impact payload: %+v", imp)
	}

	for _, bad := range []string{
		`{"op":"resolve","overlay":"dead unc nosuch","dest":"research"}`,
		`{"op":"teleport"}`,
		`not json`,
	} {
		if code, _ := post(bad); code != 400 {
			t.Errorf("POST %q: status %d, want 400", bad, code)
		}
	}

	// GET /route with an overlay (comma or %20 space form both fine).
	resp, err := http.Get(srv.URL + "/route?dest=research&user=honey&overlay=dead,unc,duke")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(b)) != "phs!duke!research!honey" {
		t.Errorf("GET overlay route: %d %q", resp.StatusCode, b)
	}
}

// TestWhatIfScenarioSmoke generates an outage/flap scenario, queries
// impact for every step through a real routed over TCP, and checks each
// reported changed-host set against a from-scratch rebuild diff — while
// asserting the served base answers stay byte-identical throughout.
func TestWhatIfScenarioSmoke(t *testing.T) {
	d := newTestMapDaemon(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.serveTCP(ctx, ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	ask := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
		reply, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(reply, "\n")
	}

	pres, err := parser.Parse(parser.Input{Name: "test.map", Src: testMapSrc})
	if err != nil {
		t.Fatal(err)
	}
	links := simnet.OrdinaryLinks(pres.Graph)
	baseReply := ask("research honey")
	baseTable := rebuildTable(t, nil)

	for i, step := range simnet.OutageScenario(links, 11, 12, 3) {
		if len(step.Down) == 0 {
			continue
		}
		sp, err := whatif.ParseSpec(step.OverlaySpec())
		if err != nil {
			t.Fatal(err)
		}
		reply := ask("impact overlay=" + sp.LineToken())
		if !strings.HasPrefix(reply, "ok ") {
			t.Fatalf("step %d (%s): %q", i, sp.Canonical(), reply)
		}
		got := map[string]bool{}
		for _, tok := range strings.Fields(reply[3:]) {
			if h, _, ok := strings.Cut(tok, ":"); ok && !strings.Contains(tok, "=") {
				got[h] = true
			}
		}
		want := changedHosts(baseTable, rebuildTable(t, step.Down))
		if len(got) != len(want) {
			t.Fatalf("step %d (%s): impact reports %v, rebuild diff %v", i, sp.Canonical(), got, want)
		}
		for h := range want {
			if !got[h] {
				t.Fatalf("step %d (%s): rebuild changes %s, impact misses it", i, sp.Canonical(), h)
			}
		}
		// The base serving path is untouched by what-if traffic.
		if r := ask("research honey"); r != baseReply {
			t.Fatalf("step %d: base reply drifted: %q -> %q", i, baseReply, r)
		}
	}
	if r := ask("research honey"); r != baseReply {
		t.Fatalf("base reply drifted after scenario: %q", r)
	}
}

// rebuildTable maps testMapSrc from scratch with the given links deleted.
func rebuildTable(t *testing.T, down []simnet.LinkRef) map[string]printer.Entry {
	t.Helper()
	pres, err := parser.Parse(parser.Input{Name: "test.map", Src: testMapSrc})
	if err != nil {
		t.Fatal(err)
	}
	g := pres.Graph
	for _, l := range down {
		a, _ := g.Lookup(l.From)
		b, _ := g.Lookup(l.To)
		if !g.DeleteLink(a, b) {
			t.Fatalf("no link %s!%s", l.From, l.To)
		}
	}
	local, _ := g.Lookup("unc")
	res, err := mapper.Run(g, local, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]printer.Entry{}
	for _, e := range printer.Routes(res, printer.Options{}) {
		out[e.Host] = e
	}
	return out
}

func changedHosts(base, edited map[string]printer.Entry) map[string]bool {
	want := map[string]bool{}
	for h, be := range base {
		if ee, ok := edited[h]; !ok || ee != be {
			want[h] = true
		}
	}
	for h := range edited {
		if _, ok := base[h]; !ok {
			want[h] = true
		}
	}
	return want
}
