//go:build race

package main

// raceEnabled gates wall-clock assertions: race instrumentation
// distorts the text/warm timing ratio, so speedup bars only run
// uninstrumented.
const raceEnabled = true
