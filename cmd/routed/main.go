// Command routed serves a pathalias route database to delivery agents —
// the serving side of the paper's "format appropriate for rapid database
// retrieval". Where mkdb converts and uupath answers one query, routed
// keeps the database resident, answers queries over a line-oriented
// protocol (TCP or stdin) and HTTP, and hot-swaps the in-memory index
// when the route file changes, without dropping in-flight lookups.
//
// Usage:
//
//	routed -d routes.db [-tcp addr] [-http addr] [-watch 2s] [-i]
//	routed -db routes.rdb [-tcp addr] [-http addr] [-watch 2s]
//	routed -d routes.db -stdin
//	routed -map -l localhost [-o-db routes.rdb] [-vantages 64] [-tcp addr] [-http addr] [-watch 2s] [-i] file...
//
// With -d, routed serves a precompiled text route database and reloads
// it when the file changes. With -db, it serves a compiled binary
// database (`mkdb -binary` / `pathalias -o-db`): the file is
// memory-mapped and served with no parsing and no per-entry allocation,
// so a 200k-host daemon answers its first lookup tens of milliseconds
// after exec instead of seconds — and several routed processes mapping
// the same file share one physical copy in the page cache. Replacing
// the file (atomically, via rename) hot-swaps the mapping under live
// traffic. With -map, routed owns the whole pipeline: it
// computes routes from the map sources in-process (the paper's three
// phases), watches the sources, and on every edit re-scans only the
// changed files and re-maps only the affected region of the network
// through the incremental re-map engine — the serving index hot-swaps
// in milliseconds, without a pathalias|mkdb round trip.
//
// With -map -o-db file, routed also keeps a compiled image of the
// routes continuously published at file: every re-map that changes the
// routes atomically and durably replaces it (no-op edits publish
// nothing), so a crash at any instant leaves a valid image — and on
// restart routed warm-starts by mmap-serving that image immediately
// while the first map computation runs in the background, swapping the
// live engine's database in when it lands. Until then, queries needing
// the live graph (from= vantages, what-if) answer with a clear
// "warming up" error instead of blocking.
//
// In -map mode routed is multi-source: a from=<host> parameter on the
// line protocol or HTTP /route answers the query from that host's
// vantage instead of -l's. Vantage machines share the engine's fragment
// cache, graph, and snapshot; the first query for a new vantage spins
// one up lazily (bounded by -vantages, LRU-evicted), and a source edit
// re-maps and hot-swaps every resident vantage's store.
//
// Examples:
//
//	$ routed -d routes.db -tcp :7411 -http :7412 &
//	$ printf 'caip.rutgers.edu pleasant\n' | nc localhost 7411
//	ok seismo!caip.rutgers.edu!pleasant
//	$ curl 'http://localhost:7412/route?dest=caip.rutgers.edu&user=pleasant'
//	seismo!caip.rutgers.edu!pleasant
//
//	$ routed -map -l unc -tcp :7411 core.map overlay.map &
//	$ printf 'from=duke ucbvax honey\n' | nc localhost 7411
//	ok research!ucbvax!honey
//	$ vi core.map   # save: all vantage stores update in milliseconds
//
// See README.md in this directory for the protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathalias/internal/routedb"
)

// version is the build identity shown in /stats, /metrics
// (routed_build_info) and the stats line. Release builds override it:
//
//	go build -ldflags "-X main.version=1.4.0" ./cmd/routed
var version = "dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("routed", flag.ContinueOnError)
	var (
		dbPath   = fs.String("d", "", "route database file (precompiled mode)")
		binPath  = fs.String("db", "", "compiled binary route database (rdb): mmap-served, instant start")
		mapMode  = fs.Bool("map", false, "compute routes from map source files (args) with the incremental engine")
		local    = fs.String("l", "", "local host name (required with -map)")
		tcpAddr  = fs.String("tcp", "", "serve the line protocol on this TCP address (e.g. :7411)")
		httpAddr = fs.String("http", "", "serve HTTP on this address (e.g. :7412)")
		useStdin = fs.Bool("stdin", false, "serve the line protocol on stdin/stdout and exit at EOF")
		watch    = fs.Duration("watch", 2*time.Second, "hot-reload on change: file events plus this fallback poll interval (0 disables)")
		fold     = fs.Bool("i", false, "case-fold queries (for maps computed with pathalias -i)")
		vantages = fs.Int("vantages", 64, "max resident vantage machines for from= queries (-map mode)")
		odb      = fs.String("o-db", "", "continuously publish the compiled route database to `file` and warm-start from it (-map mode)")
		logLevel = fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
		slow     = fs.Duration("slow", 250*time.Millisecond, "log queries slower than this threshold (0 disables)")
		pprofOn  = fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); keep it private")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(stderr, "routed: bad -log-level %q (want debug, info, warn or error)\n", *logLevel)
		return 2
	}
	usage := func() int {
		fmt.Fprintln(stderr, "usage: routed -d routes.db | -db routes.rdb [-tcp addr] [-http addr] [-watch 2s] [-i] | -stdin")
		fmt.Fprintln(stderr, "       routed -map -l localhost [-o-db routes.rdb] [-vantages 64] [-tcp addr] [-http addr] [-watch 2s] [-i] file...")
		return 2
	}
	sources := 0
	for _, set := range []bool{*dbPath != "", *binPath != "", *mapMode} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return usage()
	}
	if *mapMode && (*local == "" || len(fs.Args()) == 0) {
		return usage()
	}
	if *odb != "" && !*mapMode {
		fmt.Fprintln(stderr, "routed: -o-db requires -map mode")
		return usage()
	}
	if !*useStdin && *tcpAddr == "" && *httpAddr == "" {
		return usage()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var d *daemon
	if *mapMode {
		d = newMapDaemon(routedb.Options{FoldCase: *fold}, stderr)
		configureTelemetry(d, lvl, *slow, *odb)
		// Warm start: if a previously published image exists, serve it
		// immediately — lookups are answered from the mmap within
		// milliseconds of exec — while the first map computation runs in
		// the background; its database swaps in when it lands. The
		// deferred audit-grade verification runs behind the swap, demoting
		// to an empty store (all misses, never wrong answers) if the image
		// turns out corrupt before the live engine supersedes it.
		warm := false
		if *odb != "" {
			if db, err := routedb.OpenBinary(*odb); err == nil {
				d.store.Swap(db)
				d.swaps.Add(1)
				d.loadedAt = time.Now()
				d.logf("warm start: serving %d routes from %s while the first map computation runs", db.Len(), *odb)
				d.auditImage(db, nil, *odb)
				warm = true
			} else if !os.IsNotExist(err) {
				fmt.Fprintf(stderr, "routed: warm start from %s: %v (computing from sources instead)\n", *odb, err)
			}
		}
		w, err := newMapWatcher(d, *local, *vantages, fs.Args(), *odb, warm)
		if err != nil {
			fmt.Fprintf(stderr, "routed: %v\n", err)
			return 1
		}
		// Join a warm start's background computation before returning:
		// it logs to stderr and publishes to -o-db, neither of which
		// should outlive run.
		defer func() { <-w.ready }()
		if *watch > 0 {
			go w.watch(ctx, *watch)
		}
	} else {
		path, binary := *dbPath, false
		if *binPath != "" {
			path, binary = *binPath, true
		}
		var err error
		d, err = newDaemon(path, binary, routedb.Options{FoldCase: *fold}, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "routed: %v\n", err)
			return 1
		}
		configureTelemetry(d, lvl, *slow, *binPath)
		if *watch > 0 {
			go d.watch(ctx, *watch)
		}
	}

	if *pprofOn != "" {
		ln, err := net.Listen("tcp", *pprofOn)
		if err != nil {
			fmt.Fprintf(stderr, "routed: pprof: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "routed: pprof on %s\n", ln.Addr())
		// A dedicated mux so the profiling surface never leaks onto the
		// serving address: pprof exposes heap contents and must stay on
		// the side listener the operator chose.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() { _ = (&http.Server{Handler: pm}).Serve(ln) }()
	}

	if *useStdin {
		if err := d.serveConn(stdin, stdout); err != nil {
			fmt.Fprintf(stderr, "routed: %v\n", err)
			return 1
		}
		return 0
	}

	done := make(chan struct{})
	serving := 0
	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "routed: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "routed: line protocol on %s\n", ln.Addr())
		serving++
		go func() { d.serveTCP(ctx, ln); done <- struct{}{} }()
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "routed: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "routed: http on %s\n", ln.Addr())
		serving++
		go func() { d.serveHTTP(ctx, ln); done <- struct{}{} }()
	}
	for i := 0; i < serving; i++ {
		<-done
	}
	return 0
}

// configureTelemetry applies the flags the daemon constructors cannot
// see: build identity (version is linker-set), the image path served or
// published, the slow-query threshold, and the log level.
func configureTelemetry(d *daemon, lvl slog.Level, slow time.Duration, image string) {
	d.version = version
	d.imagePath = image
	d.slowThresh = slow
	d.logLvl.Set(lvl)
	d.metrics.registerBuildInfo(version, image)
}
