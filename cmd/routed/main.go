// Command routed serves a pathalias route database to delivery agents —
// the serving side of the paper's "format appropriate for rapid database
// retrieval". Where mkdb converts and uupath answers one query, routed
// keeps the database resident, answers queries over a line-oriented
// protocol (TCP or stdin) and HTTP, and hot-swaps the in-memory index
// when the route file changes, without dropping in-flight lookups.
//
// Usage:
//
//	routed -d routes.db [-tcp addr] [-http addr] [-watch 2s] [-i]
//	routed -d routes.db -stdin
//
// Examples:
//
//	$ routed -d routes.db -tcp :7411 -http :7412 &
//	$ printf 'caip.rutgers.edu pleasant\n' | nc localhost 7411
//	ok seismo!caip.rutgers.edu!pleasant
//	$ curl 'http://localhost:7412/route?dest=caip.rutgers.edu&user=pleasant'
//	seismo!caip.rutgers.edu!pleasant
//
// See README.md in this directory for the protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathalias/internal/routedb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("routed", flag.ContinueOnError)
	var (
		dbPath   = fs.String("d", "", "route database file (required)")
		tcpAddr  = fs.String("tcp", "", "serve the line protocol on this TCP address (e.g. :7411)")
		httpAddr = fs.String("http", "", "serve HTTP on this address (e.g. :7412)")
		useStdin = fs.Bool("stdin", false, "serve the line protocol on stdin/stdout and exit at EOF")
		watch    = fs.Duration("watch", 2*time.Second, "route-file mtime poll interval (0 disables hot reload)")
		fold     = fs.Bool("i", false, "case-fold queries (for maps computed with pathalias -i)")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dbPath == "" || (!*useStdin && *tcpAddr == "" && *httpAddr == "") {
		fmt.Fprintln(stderr, "usage: routed -d routes.db [-tcp addr] [-http addr] [-watch 2s] [-i] | -stdin")
		return 2
	}

	d, err := newDaemon(*dbPath, routedb.Options{FoldCase: *fold}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "routed: %v\n", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *watch > 0 {
		go d.watch(ctx, *watch)
	}

	if *useStdin {
		if err := d.serveConn(stdin, stdout); err != nil {
			fmt.Fprintf(stderr, "routed: %v\n", err)
			return 1
		}
		return 0
	}

	done := make(chan struct{})
	serving := 0
	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "routed: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "routed: line protocol on %s\n", ln.Addr())
		serving++
		go func() { d.serveTCP(ctx, ln); done <- struct{}{} }()
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "routed: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "routed: http on %s\n", ln.Addr())
		serving++
		go func() { d.serveHTTP(ctx, ln); done <- struct{}{} }()
	}
	for i := 0; i < serving; i++ {
		<-done
	}
	return 0
}
