package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pathalias/internal/routedb"
)

// pipelineQueries exercises every reply shape of the line protocol:
// exact hits, suffix hits, default users, misses (with %q-quoted
// destinations), malformed requests, empty lines, commands, and
// whitespace variants.
var pipelineQueries = []string{
	"duke honey",
	"caip.rutgers.edu pleasant",
	"unc",
	"x.dept.edu",
	"nowhere u",
	"no.where.at.all",
	"a b c",
	"",
	"   ",
	"\tduke\thoney\t",
	"duke. honey",
	"stats extrauser",
}

// serveAll runs input through one pipelined serveConn and returns the
// reply stream.
func serveAll(t *testing.T, d *daemon, input string) string {
	t.Helper()
	var out strings.Builder
	if err := d.serveConn(strings.NewReader(input), &out); err != nil {
		t.Fatalf("serveConn: %v", err)
	}
	return out.String()
}

// TestPipelinedMatchesSingleQuery byte-compares the pipelined batch
// path against the unpipelined single-query path (handleLine, one
// request per serve) for every query shape — the equivalence the
// zero-copy rewrite must preserve.
func TestPipelinedMatchesSingleQuery(t *testing.T) {
	for _, fold := range []bool{false, true} {
		t.Run(fmt.Sprintf("fold=%v", fold), func(t *testing.T) {
			path := writeRoutes(t, t.TempDir(), testRoutes)
			d, err := newDaemon(path, false, routedb.Options{FoldCase: fold}, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			for _, q := range pipelineQueries {
				reply, _ := d.handleLine(q)
				want.WriteString(reply)
				want.WriteByte('\n')
			}
			got := serveAll(t, d, strings.Join(pipelineQueries, "\n")+"\n")
			if got != want.String() {
				t.Errorf("pipelined replies diverge:\ngot:\n%s\nwant:\n%s", got, want.String())
			}
		})
	}
}

// TestPipelinedMatchesSingleQueryBinary is the same equivalence over a
// compiled (mmap-served) database — the -db zero-copy path.
func TestPipelinedMatchesSingleQueryBinary(t *testing.T) {
	dir := t.TempDir()
	textPath := writeRoutes(t, dir, testRoutes)
	td, err := newDaemon(textPath, false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	binPath := dir + "/routes.rdb"
	f, err := newDaemonBinaryFile(td, binPath)
	if err != nil {
		t.Fatal(err)
	}
	// The background image audit holds the mapping; join it before the
	// explicit Close (Close forbids in-flight queries).
	defer func() {
		f.audits.Wait()
		f.store.DB().Close()
	}()

	var want strings.Builder
	for _, q := range pipelineQueries {
		reply, _ := td.handleLine(q)
		want.WriteString(reply)
		want.WriteByte('\n')
	}
	got := serveAll(t, f, strings.Join(pipelineQueries, "\n")+"\n")
	if got != want.String() {
		t.Errorf("binary pipelined replies diverge:\ngot:\n%s\nwant:\n%s", got, want.String())
	}
}

// newDaemonBinaryFile compiles src's current database to path and opens
// a -db daemon over it.
func newDaemonBinaryFile(src *daemon, path string) (*daemon, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := src.store.DB().WriteBinary(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return newDaemon(path, true, routedb.Options{}, io.Discard)
}

// TestLongLineKeepsServing is the satellite regression: a request line
// beyond the 1 MiB cap must be answered with "err line too long" and
// the connection must keep serving — the pre-fix behavior was a silent
// bufio.ErrTooLong connection kill.
func TestLongLineKeepsServing(t *testing.T) {
	path := writeRoutes(t, t.TempDir(), testRoutes)
	d, err := newDaemon(path, false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("x", maxLineLen+100)
	input := "duke honey\n" + long + "\nduke honey\nquit\n"
	got := serveAll(t, d, input)
	want := "ok duke!honey\nerr line too long\nok duke!honey\nok bye\n"
	if got != want {
		t.Errorf("long-line replies = %q, want %q", got, want)
	}
}

// TestLongLineUnterminatedAtEOF: a too-long line that hits EOF before
// its newline still gets the error reply, and the stream ends cleanly.
func TestLongLineUnterminatedAtEOF(t *testing.T) {
	path := writeRoutes(t, t.TempDir(), testRoutes)
	d, err := newDaemon(path, false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	input := "duke honey\n" + strings.Repeat("y", maxLineLen+100)
	got := serveAll(t, d, input)
	want := "ok duke!honey\nerr line too long\n"
	if got != want {
		t.Errorf("replies = %q, want %q", got, want)
	}
}

// TestBoundaryLines drives lines around the read-buffer and cap sizes
// through the slow accumulation path: a request longer than the 64 KiB
// read buffer but under the cap must still resolve correctly.
func TestBoundaryLines(t *testing.T) {
	path := writeRoutes(t, t.TempDir(), testRoutes)
	d, err := newDaemon(path, false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// A >64 KiB user argument on an exact hit: crosses ReadSlice's
	// buffer, stays under the cap.
	bigUser := strings.Repeat("u", connBufSize+1000)
	input := "duke " + bigUser + "\nquit\n"
	got := serveAll(t, d, input)
	want := "ok duke!" + bigUser + "\nok bye\n"
	if got != want {
		t.Errorf("big-user reply mismatch (got %d bytes, want %d)", len(got), len(want))
	}
}

// TestPipelinedCRLF: \r\n line endings are framed like bufio.ScanLines
// (the pre-rewrite scanner).
func TestPipelinedCRLF(t *testing.T) {
	path := writeRoutes(t, t.TempDir(), testRoutes)
	d, err := newDaemon(path, false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := serveAll(t, d, "duke honey\r\nquit\r\n")
	if want := "ok duke!honey\nok bye\n"; got != want {
		t.Errorf("CRLF replies = %q, want %q", got, want)
	}
}

// TestPipelinedNonASCII: non-ASCII requests take the string fallback
// and still answer identically to handleLine.
func TestPipelinedNonASCII(t *testing.T) {
	path := writeRoutes(t, t.TempDir(), "0\tmüller\tvia!%s\n"+testRoutes)
	d, err := newDaemon(path, false, routedb.Options{FoldCase: true}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"müller u", "MÜLLER u", "duke honey"}
	var want strings.Builder
	for _, q := range queries {
		reply, _ := d.handleLine(q)
		want.WriteString(reply)
		want.WriteByte('\n')
	}
	got := serveAll(t, d, strings.Join(queries, "\n")+"\n")
	if got != want.String() {
		t.Errorf("non-ASCII replies:\ngot %q\nwant %q", got, want.String())
	}
}

// TestConcurrentPipelinedProtocol is the satellite race suite: many
// connections issue interleaved pipelined resolves and stats while the
// store hot-swaps between equivalent databases. Every resolve reply is
// byte-compared against the unpipelined single-query answer computed up
// front; stats replies (counter-dependent) are shape-checked.
func TestConcurrentPipelinedProtocol(t *testing.T) {
	path := writeRoutes(t, t.TempDir(), testRoutes)
	d, err := newDaemon(path, false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Two databases with identical routes: swapping them churns the
	// store pointer under load without changing any answer.
	dbA := d.store.DB()
	dbB, err := routedb.LoadWith(strings.NewReader(testRoutes), routedb.Options{})
	if err != nil {
		t.Fatal(err)
	}

	resolves := []string{
		"duke honey", "caip.rutgers.edu pleasant", "unc", "x.dept.edu",
		"nowhere u", "a b c", "", "duke. honey",
	}
	want := make(map[string]string, len(resolves))
	for _, q := range resolves {
		reply, _ := d.handleLine(q)
		want[q] = reply
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.serveTCP(ctx, ln)

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				d.store.Swap(dbB)
			} else {
				d.store.Swap(dbA)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const conns, rounds = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			// One pipelined batch per round: every resolve query plus a
			// stats probe, written back-to-back, then all replies read.
			var batch strings.Builder
			for _, q := range resolves {
				batch.WriteString(q)
				batch.WriteByte('\n')
			}
			batch.WriteString("stats\n")
			rd := bufio.NewReader(conn)
			for r := 0; r < rounds; r++ {
				if _, err := io.WriteString(conn, batch.String()); err != nil {
					errs <- fmt.Errorf("conn %d: write: %w", c, err)
					return
				}
				for _, q := range resolves {
					line, err := rd.ReadString('\n')
					if err != nil {
						errs <- fmt.Errorf("conn %d: read: %w", c, err)
						return
					}
					if got := strings.TrimSuffix(line, "\n"); got != want[q] {
						errs <- fmt.Errorf("conn %d round %d: %q -> %q, want %q", c, r, q, got, want[q])
						return
					}
				}
				line, err := rd.ReadString('\n')
				if err != nil {
					errs <- fmt.Errorf("conn %d: stats read: %w", c, err)
					return
				}
				if !strings.HasPrefix(line, "ok routes=3 ") {
					errs <- fmt.Errorf("conn %d: stats reply %q", c, line)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHTTPBulkRoutes drives the POST /routes batch endpoint: one reply
// line per request line, in order, matching the line protocol's resolve
// answers; stats/quit are not commands here.
func TestHTTPBulkRoutes(t *testing.T) {
	path := writeRoutes(t, t.TempDir(), testRoutes)
	d, err := newDaemon(path, false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.handler())
	defer srv.Close()

	body := "duke honey\ncaip.rutgers.edu pleasant\nnowhere u\n\na b c\nquit\n"
	resp, err := http.Post(srv.URL+"/routes", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	want := "ok duke!honey\n" +
		"ok seismo!caip.rutgers.edu!pleasant\n" +
		`err routedb: no route to "nowhere"` + "\n" +
		"err empty request\n" +
		"err want: [from=host] [overlay=spec] dest [user]\n" +
		`err routedb: no route to "quit"` + "\n"
	if string(got) != want {
		t.Errorf("POST /routes:\ngot  %q\nwant %q", got, want)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
}

// TestHTTPBulkVantage: from= per body line answers from that vantage —
// the bulk endpoint's pair-resolution form.
func TestHTTPBulkVantage(t *testing.T) {
	dir := t.TempDir()
	mapPath := dir + "/test.map"
	if err := os.WriteFile(mapPath, []byte(testMapSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	d := newMapDaemon(routedb.Options{}, io.Discard)
	if _, err := newMapWatcher(d, "unc", 8, []string{mapPath}, "", false); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.handler())
	defer srv.Close()
	body := "ucbvax honey\nfrom=duke ucbvax honey\nfrom=nosuchhost x y\n"
	resp, err := http.Post(srv.URL+"/routes", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	if len(lines) != 3 ||
		lines[0] != "ok duke!research!ucbvax!honey" ||
		lines[1] != "ok research!ucbvax!honey" ||
		!strings.HasPrefix(lines[2], "err vantage nosuchhost:") {
		t.Errorf("bulk vantage replies = %q", lines)
	}
}

// TestHTTPServerTimeouts locks in the satellite: the daemon's server
// must bound header reads and idle keep-alives so one slow client
// cannot pin a goroutine forever.
func TestHTTPServerTimeouts(t *testing.T) {
	path := writeRoutes(t, t.TempDir(), testRoutes)
	d, err := newDaemon(path, false, routedb.Options{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv := d.httpServer()
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: a stalled header read pins a goroutine forever")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: an idle keep-alive connection is held forever")
	}
}
