package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathalias/internal/fswatch"
	"pathalias/internal/obs"
	"pathalias/internal/parser"
	"pathalias/internal/rdb"
	"pathalias/internal/routedb"
	"pathalias/internal/whatif"
)

// daemon serves one route database: a hot-swappable store, the line
// protocol, the HTTP endpoints, and the watcher that reloads the store
// when the backing file changes. The store is fed either from a
// precompiled route file (-d) or by an incremental re-map engine over
// map sources (-map; see mapwatch.go) — the serving side is identical.
type daemon struct {
	path   string // route file; "" in -map mode
	binary bool   // path is a compiled rdb file (-db), mmap-served
	opts   routedb.Options
	store  *routedb.Store
	logw   io.Writer

	// vantage resolves a from=<host> query to that vantage's store,
	// lazily spinning the vantage up over the shared map engine. Nil in
	// precompiled (-d) mode, where only the default store exists.
	vantage func(from string) (*routedb.Store, error)

	// whatif answers overlay queries (resolve-under-overlay, explain,
	// impact) against the live map engine. Nil outside -map mode — the
	// precompiled modes have no graph to hypothesize over.
	whatif *whatif.Evaluator
	// defaultVantage is the -l host what-if queries default to when the
	// request carries no from=.
	defaultVantage string
	// residentVantages reports each resident vantage's route count for
	// /stats. Nil outside -map mode.
	residentVantages func() map[string]int

	// mapReady reports whether the map engine has finished its first
	// computation. Nil outside -map mode. During a warm start the daemon
	// serves the last published image immediately; queries that need the
	// live engine (from= vantages, what-if) are refused with a clear
	// error until mapReady flips.
	mapReady func() bool

	// audits tracks in-flight background image verifications
	// (auditImage); tests Wait on it.
	audits sync.WaitGroup

	// Telemetry (metrics.go). metrics feeds GET /metrics and the /stats
	// latency summaries; it is nil only when a test clears it to measure
	// instrumentation overhead. traces retains the most recent re-map
	// generation traces (-map mode; GET /lastmap, `trace`). generation
	// reads the engine's update generation (-map mode). demoted is set
	// while the store serves a predecessor because the newest image
	// failed its background audit — /readyz reports it — and cleared by
	// the next successful swap.
	metrics    *serverMetrics
	traces     *obs.TraceRing
	generation func() uint64
	demoted    atomic.Bool
	started    time.Time
	version    string
	imagePath  string // compiled image served (-db) or published (-o-db)

	// slowThresh is the slow-query log threshold (-slow); 0 disables.
	// Only the surfaces that already read the clock per request check it
	// (HTTP, what-if forms) — the pipelined line path is measured per
	// batch and never individually.
	slowThresh time.Duration

	// log is the structured logger every daemon message goes through;
	// logLvl backs -log-level. logf/warnf keep the printf shape the
	// call sites always had.
	log    *slog.Logger
	logLvl *slog.LevelVar

	mu       sync.Mutex // guards reloads (watch loop + explicit reload)
	mtime    time.Time
	size     int64
	hash     uint64
	loadedAt time.Time
	swaps    atomic.Uint64
}

// traceRingSize is how many re-map generation traces -map mode retains
// for GET /lastmap?n= and post-hoc "why was that edit slow" questions.
const traceRingSize = 64

// newDaemon loads path into a fresh store. With binary, path is a
// compiled route database (rdb): it is memory-mapped and served with no
// parse — the instant-start mode — and hot reloads swap in a fresh
// mapping, leaving old ones to the garbage collector once in-flight
// lookups drain.
func newDaemon(path string, binary bool, opts routedb.Options, logw io.Writer) (*daemon, error) {
	d := &daemon{path: path, binary: binary, opts: opts, store: routedb.NewStore(nil), logw: logw}
	d.initTelemetry()
	if err := d.reload(); err != nil {
		return nil, err
	}
	return d, nil
}

// newMapDaemon returns a daemon whose store is fed by a map watcher
// rather than a route file; the caller swaps databases in directly.
func newMapDaemon(opts routedb.Options, logw io.Writer) *daemon {
	d := &daemon{opts: opts, store: routedb.NewStore(nil), logw: logw}
	d.initTelemetry()
	d.traces = obs.NewTraceRing(traceRingSize)
	return d
}

// initTelemetry wires the logger and metrics registry common to every
// mode. The level defaults to Info; run() lowers or raises it from
// -log-level after construction.
func (d *daemon) initTelemetry() {
	d.started = time.Now()
	d.version = "dev"
	d.logLvl = new(slog.LevelVar)
	d.log = slog.New(slog.NewTextHandler(d.logw, &slog.HandlerOptions{Level: d.logLvl}))
	d.metrics = newServerMetrics(d)
}

func (d *daemon) logf(format string, args ...any) {
	d.log.Info(fmt.Sprintf(format, args...))
}

func (d *daemon) warnf(format string, args ...any) {
	d.log.Warn(fmt.Sprintf(format, args...))
}

// noteSlow counts and logs a query that crossed the -slow threshold,
// with enough of the request to name the culprit destination, vantage,
// and overlay.
func (d *daemon) noteSlow(surface, req string, dur time.Duration) {
	if d.slowThresh <= 0 || dur < d.slowThresh {
		return
	}
	if d.metrics != nil {
		d.metrics.slow.Inc()
	}
	d.log.Warn("slow query", "surface", surface, "request", req,
		"dur", dur.Round(time.Microsecond).String(), "threshold", d.slowThresh.String())
}

// contentHash fingerprints a route file for the same-second-rewrite
// check (parser.HashInput's chunked FNV over the raw bytes).
func contentHash(data []byte) uint64 {
	return parser.HashInput(parser.Input{Src: string(data)})
}

// reload rebuilds the database from the route file and swaps it in.
// Lookups proceed against the old database until the swap. The observed
// (mtime, size, hash) triple is recorded even when parsing fails, so a
// persistently malformed file is not re-parsed on every watch tick —
// only when it changes again.
//
// In binary mode no parsing happens at all: the compiled file is
// mapped, checksummed, and validated, and its own integrity checksum
// doubles as the content hash for the watcher. A superseded mapping is
// released by the garbage collector once no in-flight lookup can hold
// it (routedb ties the munmap to the old DB's reachability).
func (d *daemon) reload() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.binary {
		return d.reloadBinaryLocked()
	}
	data, err := os.ReadFile(d.path)
	if err != nil {
		return err
	}
	fi, err := os.Stat(d.path)
	if err != nil {
		return err
	}
	d.mtime = fi.ModTime()
	d.size = int64(len(data))
	d.hash = contentHash(data)
	db, err := routedb.LoadWith(bytes.NewReader(data), d.opts)
	if err != nil {
		return err
	}
	d.store.Swap(db)
	d.loadedAt = time.Now()
	d.swaps.Add(1)
	d.demoted.Store(false)
	d.logf("loaded %d routes from %s", db.Len(), d.path)
	return nil
}

// reloadBinaryLocked opens the compiled database and swaps it in;
// d.mu must be held. The stat triple is recorded even when validation
// fails, so a persistently corrupt file is re-probed only by its cheap
// footer checksum until it changes again. The open reuses the served
// database's already-validated sections where the new image is
// byte-identical (the continuous-publish common case: one edit moves
// one corner of the map), and the audit-grade verification the open
// path defers runs in the background after the swap.
func (d *daemon) reloadBinaryLocked() error {
	fi, err := os.Stat(d.path)
	if err != nil {
		return err
	}
	d.mtime = fi.ModTime()
	d.size = fi.Size()
	db, err := routedb.OpenBinaryReusing(d.path, d.store.DB())
	if err != nil {
		// Memoize what we observed so a persistently corrupt file is
		// re-probed by its cheap footer checksum, not re-opened, until
		// it changes again.
		if crc, cerr := rdb.FileChecksum(d.path); cerr == nil {
			d.hash = uint64(crc)
		} else {
			d.hash = 0
		}
		return err
	}
	// Record the served image's own checksum — not a separate file
	// read, which could fingerprint a different image if the file is
	// replaced between the two opens.
	crc, _ := db.Binary()
	d.hash = uint64(crc)
	if got := db.Options(); got != d.opts {
		d.logf("note: %s was compiled with FoldCase=%v; the file's setting wins over the -i flag", d.path, got.FoldCase)
	}
	prev := d.store.Swap(db)
	d.loadedAt = time.Now()
	d.swaps.Add(1)
	d.demoted.Store(false)
	if n := db.ReusedSections(); n > 0 {
		d.logf("mapped %d routes from %s (no parse, %d/4 sections reused from the previous image)", db.Len(), d.path, n)
	} else {
		d.logf("mapped %d routes from %s (no parse)", db.Len(), d.path)
	}
	d.auditImage(db, prev, d.path)
	return nil
}

// auditImage runs the audit-grade verification the binary open path
// defers for cold-start speed (routedb.DeepVerify — today, the probe
// reachability proof) in the background, after db has already started
// serving. On a fault the store is demoted back to prev with a logged
// error — unless a newer database superseded db first, in which case
// the late verdict must not clobber it. Failures only log and demote:
// serving answers from the predecessor beats refusing to serve.
func (d *daemon) auditImage(db, prev *routedb.DB, src string) {
	d.audits.Add(1)
	go func() {
		defer d.audits.Done()
		err := db.DeepVerify()
		if err == nil {
			return
		}
		if d.store.CompareAndSwap(db, prev) {
			d.demoted.Store(true)
			if d.metrics != nil {
				d.metrics.demotions.Inc()
			}
			d.warnf("audit: %s failed deep verification: %v (demoted to the previous database)", src, err)
		} else {
			d.warnf("audit: %s failed deep verification: %v (already superseded)", src, err)
		}
	}()
}

// staleSettle is how long after a file's mtime the watcher keeps
// re-verifying content by hash: a rewrite within the same second leaves
// the mtime unchanged on coarse-granularity filesystems, so an
// unchanged (mtime, size) pair is trusted only once the file has been
// quiet for longer than any plausible timestamp granularity.
const staleSettle = 3 * time.Second

// changed reports whether the route file differs from what is loaded:
// any (mtime, size) difference, or — for a file modified recently
// enough that a same-second rewrite could hide behind an equal mtime —
// a content hash difference.
func (d *daemon) changed() (bool, error) {
	fi, err := os.Stat(d.path)
	if err != nil {
		return false, err
	}
	d.mu.Lock()
	sameStat := fi.ModTime().Equal(d.mtime) && fi.Size() == d.size
	hash := d.hash
	d.mu.Unlock()
	if !sameStat {
		return true, nil
	}
	if time.Since(fi.ModTime()) > staleSettle {
		return false, nil
	}
	if d.binary {
		crc, err := rdb.FileChecksum(d.path)
		if err != nil {
			// Mid-replace or corrupt: treat as changed and let reload
			// decide (it keeps the old database on failure).
			return true, nil
		}
		return uint64(crc) != hash, nil
	}
	data, err := os.ReadFile(d.path)
	if err != nil {
		return false, err
	}
	return contentHash(data) != hash, nil
}

// watch hot-swaps the store when the route file changes. Where the
// kernel offers file events (fswatch), an edit is noticed within
// milliseconds; the poll ticker stays as the portable correctness path
// either way. A vanished or malformed file is logged and the old
// database keeps serving.
func (d *daemon) watch(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	var kicks <-chan struct{} // nil without event support: never ready
	if fw, err := fswatch.New([]string{d.path}); err == nil {
		defer fw.Close()
		kicks = fw.Kicks()
		d.logf("watching %s via file events (poll every %v as fallback)", d.path, interval)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		case <-kicks:
		}
		changed, err := d.changed()
		if err != nil {
			d.warnf("watch: %v", err)
			continue
		}
		if !changed {
			continue
		}
		if err := d.reload(); err != nil {
			d.warnf("reload: %v (still serving previous database)", err)
		}
	}
}

// handleLine answers one request line of the line-oriented protocol:
//
//	[from=host] [overlay=spec] dest [user]
//	                          resolve a destination (user defaults to
//	                          the %s marker), optionally from another
//	                          vantage host, optionally under a what-if
//	                          overlay (both -map mode only)
//	explain [from=host] [overlay=spec] dest
//	                          explain the route hop by hop — and, with
//	                          an overlay, how it changes (-map mode)
//	impact [from=host] overlay=spec
//	                          report every host whose route changes
//	                          under the overlay (-map mode)
//	stats                     one-line counter dump
//	trace                     the newest re-map generation's stage
//	                          trace, one line (-map mode only)
//	quit                      close the connection
//
// An overlay spec is the what-if edit language with commas for
// whitespace so it fits one token: "dead,a,b;cost,a,c,DEMAND".
//
// Replies are "ok <payload>" or "err <message>" — a malformed or
// rejected what-if query is always answered, never dropped. The command
// words shadow hosts literally named
// "stats"/"quit"/"trace"/"explain"/"impact", but only in the first
// field: resolve those with an explicit user argument ("stats
// someuser") or a leading vantage ("from=unc explain").
func (d *daemon) handleLine(line string) (reply string, closing bool) {
	fields := strings.Fields(line)
	if len(fields) > 0 && (fields[0] == "explain" || fields[0] == "impact") {
		return d.whatifLine(fields[0], fields[1:]), false
	}
	from := ""
	if len(fields) > 0 && strings.HasPrefix(fields[0], "from=") {
		from = strings.TrimPrefix(fields[0], "from=")
		fields = fields[1:]
	}
	overlay, hasOverlay := "", false
	if len(fields) > 0 && strings.HasPrefix(fields[0], "overlay=") {
		overlay = strings.TrimPrefix(fields[0], "overlay=")
		hasOverlay = true
		fields = fields[1:]
	}
	switch {
	case len(fields) == 0:
		return "err empty request", false
	case len(fields) == 1 && fields[0] == "quit" && from == "" && !hasOverlay:
		return "ok bye", true
	case len(fields) == 1 && fields[0] == "stats" && from == "" && !hasOverlay:
		return "ok " + d.statsLine(), false
	case len(fields) == 1 && fields[0] == "trace" && from == "" && !hasOverlay:
		return d.traceReply(), false
	case len(fields) > 2:
		return "err want: [from=host] [overlay=spec] dest [user]", false
	}
	user := "%s"
	if len(fields) == 2 {
		user = fields[1]
	}
	if hasOverlay {
		wf, err := d.whatifEval()
		if err != nil {
			return "err " + err.Error(), false
		}
		addr, err := wf.Resolve(d.whatifFrom(from), overlay, fields[0], user)
		if err != nil {
			return "err " + err.Error(), false
		}
		return "ok " + addr, false
	}
	store, err := d.storeFor(from)
	if err != nil {
		return "err " + err.Error(), false
	}
	res, err := store.Resolve(fields[0], user)
	if err != nil {
		return "err " + err.Error(), false
	}
	return "ok " + res.Address(), false
}

// traceReply answers the `trace` protocol command with the newest
// re-map generation's stage trace.
func (d *daemon) traceReply() string {
	if d.traces == nil {
		return "err re-map traces require -map mode"
	}
	t := d.traces.Last()
	if t == nil {
		return "err no re-map generation recorded yet"
	}
	return "ok " + t.Line()
}

// whatifFrom maps an optional from= value to the vantage what-if
// evaluates at: the -l default when empty.
func (d *daemon) whatifFrom(from string) string {
	if from == "" {
		return d.defaultVantage
	}
	return from
}

// whatifLine answers the explain and impact commands.
func (d *daemon) whatifLine(cmd string, fields []string) string {
	wf, err := d.whatifEval()
	if err != nil {
		return "err " + err.Error()
	}
	from, overlay := "", ""
	hasOverlay := false
	for len(fields) > 0 {
		if v, ok := strings.CutPrefix(fields[0], "from="); ok {
			from = v
		} else if v, ok := strings.CutPrefix(fields[0], "overlay="); ok {
			overlay, hasOverlay = v, true
		} else {
			break
		}
		fields = fields[1:]
	}
	if hasOverlay && overlay == "" {
		return "err whatif: empty overlay spec"
	}
	switch cmd {
	case "explain":
		if len(fields) != 1 {
			return "err want: explain [from=host] [overlay=spec] dest"
		}
		res, err := wf.Explain(d.whatifFrom(from), overlay, fields[0])
		if err != nil {
			return "err " + err.Error()
		}
		if res.Under != nil {
			return "ok base: " + res.Base.Line() + " || overlay: " + res.Under.Line()
		}
		return "ok " + res.Base.Line()
	default: // impact
		if overlay == "" || len(fields) != 0 {
			return "err want: impact [from=host] overlay=spec"
		}
		imp, err := wf.ImpactOf(d.whatifFrom(from), overlay)
		if err != nil {
			return "err " + err.Error()
		}
		return "ok " + impactLine(imp)
	}
}

// impactLineMax caps how many per-host changes the one-line impact reply
// lists; the full report is available as JSON via POST /whatif.
const impactLineMax = 64

func impactLine(imp *whatif.Impact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gen=%d routes=%d changed=%d added=%d removed=%d rerouted=%d recosted=%d",
		imp.Gen, imp.Routes, len(imp.Changed),
		imp.Stats.Added, imp.Stats.Removed, imp.Stats.Rerouted, imp.Stats.Recosted)
	for i, c := range imp.Changed {
		if i == impactLineMax {
			fmt.Fprintf(&b, " +%d more (POST /whatif for the full report)", len(imp.Changed)-impactLineMax)
			break
		}
		fmt.Fprintf(&b, " %s:%s", c.Host, c.Kind)
	}
	return b.String()
}

// storeFor picks the store answering a query: the default store for an
// empty vantage, the per-vantage one otherwise. During a warm start
// only the default store (the published image) exists; vantage queries
// are refused until the engine's first computation lands rather than
// blocking the connection behind it.
func (d *daemon) storeFor(from string) (*routedb.Store, error) {
	if from == "" {
		return d.store, nil
	}
	if d.vantage == nil {
		return nil, fmt.Errorf("vantage queries (from=) require -map mode")
	}
	if d.mapReady != nil && !d.mapReady() {
		return nil, fmt.Errorf("map engine still warming up (serving the last published image)")
	}
	return d.vantage(from)
}

// whatifEval returns the what-if evaluator once it can answer: never
// outside -map mode, and not during a warm start, where the daemon is
// serving the published image before the engine has a graph to
// hypothesize over.
func (d *daemon) whatifEval() (*whatif.Evaluator, error) {
	if d.whatif == nil {
		return nil, fmt.Errorf("what-if queries require -map mode")
	}
	if d.mapReady != nil && !d.mapReady() {
		return nil, fmt.Errorf("map engine still warming up (serving the last published image)")
	}
	return d.whatif, nil
}

// The serving hot path. A mailer that writes N requests back-to-back
// gets N replies in about one round trip: replies accumulate in the
// write buffer and are flushed only when the read side has no more
// buffered input (i.e. the next read would block) or the buffer fills.
// Requests are read as bytes (no per-line string), parsed into reusable
// field slices, and answered through the allocation-free AppendResolve
// path into a pooled per-connection buffer — steady state, a request on
// the -db path allocates nothing and copies the route template straight
// off the mapped database pages into the connection buffer.

const (
	// maxLineLen caps one request line; longer lines are consumed and
	// answered with "err line too long" instead of killing the
	// connection.
	maxLineLen = 1 << 20
	// connBufSize sizes the per-connection read and write buffers; it
	// bounds how much pipelined batching one flush can carry.
	connBufSize = 64 << 10
)

// lineState is the pooled per-connection scratch: the reply line being
// built, the oversized-line accumulator, the request field split, and
// the resolver's scratch. Nothing in it survives a request except
// capacity.
type lineState struct {
	out    []byte
	long   []byte
	fields [][]byte
	sc     routedb.Scratch
}

var linePool = sync.Pool{New: func() any { return new(lineState) }}

// dropEOL trims one trailing \n and then one trailing \r, matching
// bufio.ScanLines framing.
func dropEOL(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// readLine reads the next newline-terminated request. The returned
// slice aliases the reader's buffer (or st.long) and is valid until the
// next read. A line longer than maxLineLen is consumed to its newline
// and reported tooLong with no line. err is io.EOF at end of input —
// possibly alongside a final unterminated line.
func readLine(br *bufio.Reader, st *lineState) (line []byte, tooLong bool, err error) {
	chunk, err := br.ReadSlice('\n')
	if err != bufio.ErrBufferFull {
		return dropEOL(chunk), false, err
	}
	// Slow path: the line overflows the read buffer. Accumulate chunks
	// up to the cap; past it, keep consuming but stop copying.
	long := append(st.long[:0], chunk...)
	for err == bufio.ErrBufferFull {
		chunk, err = br.ReadSlice('\n')
		if !tooLong {
			if len(long)+len(chunk) > maxLineLen {
				tooLong = true
			} else {
				long = append(long, chunk...)
			}
		}
	}
	st.long = long
	if tooLong {
		return nil, true, err
	}
	return dropEOL(long), false, err
}

// serveConn runs the line protocol over one connection (or any
// read/write pair, e.g. stdin/stdout), pipelined: replies are flushed
// when the input side would block, when the write buffer fills, or at
// quit/EOF — never per line.
func (d *daemon) serveConn(r io.Reader, w io.Writer) error {
	br := bufio.NewReaderSize(r, connBufSize)
	bw := bufio.NewWriterSize(w, connBufSize)
	st := linePool.Get().(*lineState)
	defer linePool.Put(st)
	// Latency is observed per batch, not per request: one clock read
	// when a batch's first line arrives, one at its flush boundary, the
	// batch mean recorded once per request (Histogram.ObserveBatch).
	// Per-request time.Now() calls would be a measurable fraction of the
	// ~170ns a pipelined resolve costs.
	var hist *obs.Histogram
	if d.metrics != nil {
		hist = d.metrics.line
	}
	var batchN int
	var batchStart time.Time
	observeBatch := func() {
		if batchN > 0 {
			hist.ObserveBatch(time.Since(batchStart), batchN)
			batchN = 0
		}
	}
	for {
		// Flush before a read that would block: the client has seen
		// nothing of this batch yet, and the next request may be a
		// reply away.
		if br.Buffered() == 0 {
			if hist != nil {
				observeBatch()
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		line, tooLong, err := readLine(br, st)
		if hist != nil && batchN == 0 {
			batchStart = time.Now()
		}
		switch {
		case tooLong:
			if _, werr := bw.WriteString("err line too long\n"); werr != nil {
				return werr
			}
		case err == nil || (err == io.EOF && len(line) > 0):
			var closing bool
			st.out, closing = d.handleLineBytes(st.out[:0], line, st, true)
			if hist != nil {
				batchN++
			}
			if _, werr := bw.Write(st.out); werr != nil {
				return werr
			}
			if werr := bw.WriteByte('\n'); werr != nil {
				return werr
			}
			if closing {
				if hist != nil {
					observeBatch()
				}
				return bw.Flush()
			}
		}
		if err != nil {
			if hist != nil {
				observeBatch()
			}
			if err == io.EOF {
				return bw.Flush()
			}
			bw.Flush()
			return err
		}
	}
}

// isSpaceByte matches unicode.IsSpace over the ASCII range — the only
// range handleLineBytes parses; anything else falls back to the string
// path.
func isSpaceByte(c byte) bool {
	switch c {
	case '\t', '\n', '\v', '\f', '\r', ' ':
		return true
	}
	return false
}

func asciiLine(b []byte) bool {
	for _, c := range b {
		if c >= 0x80 {
			return false
		}
	}
	return true
}

// appendFields splits line into whitespace-separated fields, reusing
// dst; the fields alias line.
func appendFields(dst [][]byte, line []byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && isSpaceByte(line[i]) {
			i++
		}
		if i == len(line) {
			break
		}
		j := i + 1
		for j < len(line) && !isSpaceByte(line[j]) {
			j++
		}
		dst = append(dst, line[i:j])
		i = j
	}
	return dst
}

var (
	fromPrefix  = []byte("from=")
	quitWord    = []byte("quit")
	statsWord   = []byte("stats")
	traceWord   = []byte("trace")
	defaultUser = []byte("%s")
	overlayTok  = []byte("overlay=")
	explainWord = []byte("explain")
	impactWord  = []byte("impact")
)

// whatifRequestBytes reports whether a request line is a what-if form —
// an overlay= token anywhere, or an explain/impact command word first —
// which the byte path hands to the string handler: what-if evaluation
// maps a graph, so shaving the line parse is beside the point.
func whatifRequestBytes(line []byte) bool {
	if bytes.Contains(line, overlayTok) {
		return true
	}
	i := 0
	for i < len(line) && isSpaceByte(line[i]) {
		i++
	}
	rest := line[i:]
	for _, w := range [][]byte{explainWord, impactWord} {
		if bytes.HasPrefix(rest, w) && (len(rest) == len(w) || isSpaceByte(rest[len(w)])) {
			return true
		}
	}
	return false
}

// handleLineBytes is handleLine on the pipelined hot path: it appends
// the reply for one request line to dst (no trailing newline) instead
// of building strings. With commands false (the HTTP bulk endpoint),
// the single-token stats/quit commands are not recognized and every
// line is a resolve. Replies are byte-identical to handleLine's for
// every input; a line with non-ASCII bytes is delegated to it outright
// (case folding is not byte-local there).
func (d *daemon) handleLineBytes(dst, line []byte, st *lineState, commands bool) (out []byte, closing bool) {
	if wf := whatifRequestBytes(line); wf || !asciiLine(line) {
		// What-if evaluation maps a graph; one clock read per request
		// is nothing next to that, so this is where per-request latency
		// (and the slow-query check) lives on the line protocol.
		if wf && d.metrics != nil {
			start := time.Now()
			reply, closing := d.handleLine(string(line))
			dur := time.Since(start)
			d.metrics.whatifReq.Observe(dur)
			d.noteSlow("line", string(line), dur)
			return append(dst, reply...), closing
		}
		reply, closing := d.handleLine(string(line))
		return append(dst, reply...), closing
	}
	st.fields = appendFields(st.fields[:0], line)
	fields := st.fields
	var from []byte
	if len(fields) > 0 && bytes.HasPrefix(fields[0], fromPrefix) {
		from = fields[0][len(fromPrefix):]
		fields = fields[1:]
	}
	switch {
	case len(fields) == 0:
		return append(dst, "err empty request"...), false
	case commands && len(fields) == 1 && len(from) == 0 && bytes.Equal(fields[0], quitWord):
		return append(dst, "ok bye"...), true
	case commands && len(fields) == 1 && len(from) == 0 && bytes.Equal(fields[0], statsWord):
		dst = append(dst, "ok "...)
		return append(dst, d.statsLine()...), false
	case commands && len(fields) == 1 && len(from) == 0 && bytes.Equal(fields[0], traceWord):
		return append(dst, d.traceReply()...), false
	case len(fields) > 2:
		return append(dst, "err want: [from=host] [overlay=spec] dest [user]"...), false
	}
	user := defaultUser
	if len(fields) == 2 {
		user = fields[1]
	}
	dest := fields[0]
	store := d.store
	if len(from) > 0 {
		s, err := d.storeFor(string(from))
		if err != nil {
			dst = append(dst, "err "...)
			return append(dst, err.Error()...), false
		}
		store = s
	}
	mark := len(dst)
	dst = append(dst, "ok "...)
	out, ok := store.AppendResolve(dst, dest, user, &st.sc)
	if !ok {
		// The string path's miss error, rebuilt byte-compatibly:
		// "routedb: no route to" + %q of the raw destination.
		out = append(out[:mark], "err routedb: no route to "...)
		out = strconv.AppendQuote(out, string(dest))
	}
	return out, false
}

// serveTCP accepts line-protocol connections until ctx is done.
func (d *daemon) serveTCP(ctx context.Context, ln net.Listener) {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			d.warnf("accept: %v", err)
			continue
		}
		go func() {
			defer conn.Close()
			if err := d.serveConn(conn, conn); err != nil {
				d.warnf("conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// statsSnapshot is the JSON shape of /stats. The what-if and vantage
// fields appear only in -map mode; the precompiled modes' JSON is
// unchanged.
type statsSnapshot struct {
	Routes     int       `json:"routes"`
	Swaps      uint64    `json:"swaps"`
	LoadedAt   time.Time `json:"loaded_at"`
	Lookups    uint64    `json:"lookups"`
	Resolves   uint64    `json:"resolves"`
	Hits       uint64    `json:"hits"`
	SuffixHits uint64    `json:"suffix_hits"`
	Misses     uint64    `json:"misses"`
	// WhatIf carries the overlay cache counters: hits, misses,
	// evictions, and resident overlay machines.
	WhatIf *whatif.Stats `json:"whatif,omitempty"`
	// Vantages maps each resident vantage to its route count.
	Vantages map[string]int `json:"vantages,omitempty"`
	// Version and UptimeSecs identify the process; Generation is the map
	// engine's update generation (-map mode); Image is the compiled
	// database served or published, when there is one.
	Version    string  `json:"version,omitempty"`
	UptimeSecs float64 `json:"uptime_secs"`
	Generation uint64  `json:"generation,omitempty"`
	Image      string  `json:"image,omitempty"`
	// Latency summarizes the request histograms by surface; surfaces
	// with no observations are omitted, so a freshly started daemon's
	// JSON is exactly the pre-telemetry shape plus identity fields.
	Latency map[string]latencySummary `json:"latency,omitempty"`
}

func (d *daemon) snapshot() statsSnapshot {
	db := d.store.DB()
	s := db.Stats()
	d.mu.Lock()
	loadedAt := d.loadedAt
	d.mu.Unlock()
	snap := statsSnapshot{
		Routes:     db.Len(),
		Swaps:      d.swaps.Load(),
		LoadedAt:   loadedAt,
		Lookups:    s.Lookups,
		Resolves:   s.Resolves,
		Hits:       s.Hits,
		SuffixHits: s.SuffixHits,
		Misses:     s.Misses,
		Version:    d.version,
		UptimeSecs: time.Since(d.started).Seconds(),
		Image:      d.imagePath,
	}
	if d.generation != nil {
		snap.Generation = d.generation()
	}
	if d.whatif != nil {
		ws := d.whatif.Stats()
		snap.WhatIf = &ws
	}
	if d.residentVantages != nil {
		snap.Vantages = d.residentVantages()
	}
	if d.metrics != nil {
		lat := make(map[string]latencySummary)
		for name, h := range map[string]*obs.Histogram{
			"line":           d.metrics.line,
			"http_route":     d.metrics.httpRoute,
			"http_routes":    d.metrics.httpRoutes,
			"whatif":         d.metrics.whatifReq,
			"overlay_cold":   d.metrics.overlayCold,
			"overlay_cached": d.metrics.overlayCached,
		} {
			if sum, ok := summarize(h); ok {
				lat[name] = sum
			}
		}
		if len(lat) > 0 {
			snap.Latency = lat
		}
	}
	return snap
}

func (d *daemon) statsLine() string {
	s := d.snapshot()
	line := fmt.Sprintf("routes=%d swaps=%d lookups=%d resolves=%d hits=%d suffix_hits=%d misses=%d",
		s.Routes, s.Swaps, s.Lookups, s.Resolves, s.Hits, s.SuffixHits, s.Misses)
	if s.WhatIf != nil {
		line += fmt.Sprintf(" whatif_hits=%d whatif_misses=%d whatif_evictions=%d whatif_resident=%d vantages=%d",
			s.WhatIf.Hits, s.WhatIf.Misses, s.WhatIf.Evictions, s.WhatIf.Resident, len(s.Vantages))
	}
	// Latency joins the line only once sampled, keeping the historical
	// exact line shape for fresh daemons (and the tests that pin it).
	if d.metrics != nil {
		if n := d.metrics.line.Count(); n > 0 {
			line += fmt.Sprintf(" line_reqs=%d line_p50=%s line_p99=%s", n,
				d.metrics.line.Quantile(0.50).Round(time.Microsecond),
				d.metrics.line.Quantile(0.99).Round(time.Microsecond))
		}
	}
	return line
}

// handler builds the HTTP mux: GET /route?dest=...&user=..., POST
// /routes (bulk), POST /whatif (overlay queries as JSON), /stats,
// /metrics (Prometheus text), /healthz (liveness), /readyz
// (readiness), /lastmap (re-map traces, -map mode).
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /route", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			if d.metrics != nil {
				d.metrics.httpRoute.Observe(dur)
			}
			d.noteSlow("http_route", r.URL.RawQuery, dur)
		}()
		dest := r.URL.Query().Get("dest")
		if dest == "" {
			http.Error(w, "missing dest parameter", http.StatusBadRequest)
			return
		}
		user := r.URL.Query().Get("user")
		if user == "" {
			user = "%s"
		}
		if overlay := r.URL.Query().Get("overlay"); overlay != "" {
			wf, err := d.whatifEval()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			addr, err := wf.Resolve(d.whatifFrom(r.URL.Query().Get("from")), overlay, dest, user)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, addr)
			return
		}
		store, err := d.storeFor(r.URL.Query().Get("from"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := store.Resolve(dest, user)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, res.Address())
	})
	// POST /whatif evaluates one overlay query and returns the full
	// structured answer — the line protocol's explain/impact replies are
	// the compact rendering of the same objects. Request body:
	//
	//	{"op": "resolve"|"explain"|"impact",
	//	 "from": "host", "overlay": "dead a b; cost a c 300",
	//	 "dest": "host", "user": "lou"}
	mux.HandleFunc("POST /whatif", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		desc := "" // filled after decode, for the slow-query log
		defer func() {
			dur := time.Since(start)
			if d.metrics != nil {
				d.metrics.whatifReq.Observe(dur)
			}
			d.noteSlow("whatif", desc, dur)
		}()
		if d.whatif == nil {
			http.Error(w, "what-if queries require -map mode", http.StatusBadRequest)
			return
		}
		var req struct {
			Op      string `json:"op"`
			From    string `json:"from"`
			Overlay string `json:"overlay"`
			Dest    string `json:"dest"`
			User    string `json:"user"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, maxLineLen)).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.User == "" {
			req.User = "%s"
		}
		from := d.whatifFrom(req.From)
		if d.slowThresh > 0 {
			desc = fmt.Sprintf("op=%s from=%s overlay=%q dest=%s", req.Op, from, req.Overlay, req.Dest)
		}
		var out any
		var err error
		switch req.Op {
		case "resolve":
			var addr string
			if addr, err = d.whatif.Resolve(from, req.Overlay, req.Dest, req.User); err == nil {
				out = map[string]string{"address": addr}
			}
		case "explain":
			out, err = d.whatif.Explain(from, req.Overlay, req.Dest)
		case "impact":
			out, err = d.whatif.ImpactOf(from, req.Overlay)
		default:
			err = fmt.Errorf("op must be resolve, explain, or impact")
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	// POST /routes is the bulk/batch framing for HTTP clients: the body
	// carries one request per line — "[from=host] dest [user]", the
	// line protocol's resolve form — and the response carries one
	// "ok ..."/"err ..." line per request, in order. One HTTP round
	// trip resolves the whole batch through the same zero-copy path as
	// the pipelined line protocol. The single-token stats/quit commands
	// are not special here: every line is a resolve.
	mux.HandleFunc("POST /routes", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		nreq := 0
		st := linePool.Get().(*lineState)
		defer linePool.Put(st)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		br := bufio.NewReaderSize(r.Body, connBufSize)
		bw := bufio.NewWriterSize(w, connBufSize)
		for {
			line, tooLong, err := readLine(br, st)
			switch {
			case tooLong:
				bw.WriteString("err line too long\n")
			case err == nil || (err == io.EOF && len(line) > 0):
				st.out, _ = d.handleLineBytes(st.out[:0], line, st, false)
				nreq++
				bw.Write(st.out)
				bw.WriteByte('\n')
			}
			if err != nil {
				break
			}
		}
		bw.Flush()
		// The whole body is one batch: requests per bulk call are
		// indistinguishable to the client, so the batch mean is the
		// honest per-request number (same accounting as the pipelined
		// line protocol).
		if d.metrics != nil && nreq > 0 {
			d.metrics.httpRoutes.ObserveBatch(time.Since(start), nreq)
		}
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(d.snapshot())
	})
	if d.metrics != nil {
		mux.Handle("GET /metrics", d.metrics.reg.Handler())
	}
	// /healthz is liveness: the process is up and answering. /readyz is
	// readiness: the daemon is serving the map it was asked to serve —
	// 503 while a warm start's first computation is still running, and
	// 503 while the store is demoted to a predecessor because the
	// newest image failed its background audit. A balancer draining on
	// /readyz keeps traffic on healthy peers through both windows
	// without killing a process that is still correctly serving its
	// fallback.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if d.mapReady != nil && !d.mapReady() {
			http.Error(w, "warming up: serving the last published image while the first map computation runs",
				http.StatusServiceUnavailable)
			return
		}
		if d.demoted.Load() {
			http.Error(w, "demoted: the served image failed deep verification; serving its predecessor",
				http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// /lastmap exposes the re-map pipeline traces: the newest
	// generation by default, the most recent ?n= as a newest-first
	// array.
	mux.HandleFunc("GET /lastmap", func(w http.ResponseWriter, r *http.Request) {
		if d.traces == nil {
			http.Error(w, "re-map traces require -map mode", http.StatusNotFound)
			return
		}
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(d.traces.Recent(n))
			return
		}
		t := d.traces.Last()
		if t == nil {
			http.Error(w, "no re-map generation recorded yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(t)
	})
	return mux
}

// httpServer builds the daemon's http.Server. The timeouts keep one
// slow or stalled client from pinning a goroutine (and its buffers)
// forever: a peer must finish its request header within
// ReadHeaderTimeout, and an idle keep-alive connection is closed after
// IdleTimeout. No overall write timeout: a large bulk response to a
// slow reader is legitimate.
func (d *daemon) httpServer() *http.Server {
	return &http.Server{
		Handler:           d.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// serveHTTP runs the HTTP endpoints until ctx is done.
func (d *daemon) serveHTTP(ctx context.Context, ln net.Listener) {
	srv := d.httpServer()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		d.warnf("http: %v", err)
	}
}
