package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathalias/internal/routedb"
)

// daemon serves one route file: a hot-swappable store, the line
// protocol, the HTTP endpoints, and the mtime watcher that reloads the
// store when the file changes.
type daemon struct {
	path  string
	opts  routedb.Options
	store *routedb.Store
	logw  io.Writer

	mu       sync.Mutex // guards reloads (watch loop + explicit reload)
	mtime    time.Time
	loadedAt time.Time
	swaps    atomic.Uint64
}

// newDaemon loads path into a fresh store.
func newDaemon(path string, opts routedb.Options, logw io.Writer) (*daemon, error) {
	d := &daemon{path: path, opts: opts, store: routedb.NewStore(nil), logw: logw}
	if err := d.reload(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *daemon) logf(format string, args ...any) {
	fmt.Fprintf(d.logw, "routed: "+format+"\n", args...)
}

// reload rebuilds the database from the route file and swaps it in.
// Lookups proceed against the old database until the swap. The observed
// mtime is recorded even when parsing fails, so a persistently malformed
// file is not re-parsed on every watch tick — only when it changes
// again.
func (d *daemon) reload() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, err := os.Open(d.path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	d.mtime = fi.ModTime()
	db, err := routedb.LoadWith(f, d.opts)
	if err != nil {
		return err
	}
	d.store.Swap(db)
	d.loadedAt = time.Now()
	d.swaps.Add(1)
	d.logf("loaded %d routes from %s", db.Len(), d.path)
	return nil
}

// watch polls the route file's mtime and hot-swaps the store when it
// changes. A vanished or malformed file is logged and the old database
// keeps serving.
func (d *daemon) watch(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			fi, err := os.Stat(d.path)
			if err != nil {
				d.logf("watch: %v", err)
				continue
			}
			d.mu.Lock()
			changed := !fi.ModTime().Equal(d.mtime)
			d.mu.Unlock()
			if !changed {
				continue
			}
			if err := d.reload(); err != nil {
				d.logf("reload: %v (still serving previous database)", err)
			}
		}
	}
}

// handleLine answers one request line of the line-oriented protocol:
//
//	dest [user]   resolve a destination (user defaults to the %s marker)
//	stats         one-line counter dump
//	quit          close the connection
//
// Replies are "ok <payload>" or "err <message>". The single-token
// commands shadow hosts literally named "stats"/"quit"; query those with
// an explicit user argument.
func (d *daemon) handleLine(line string) (reply string, closing bool) {
	fields := strings.Fields(line)
	switch {
	case len(fields) == 0:
		return "err empty request", false
	case len(fields) == 1 && fields[0] == "quit":
		return "ok bye", true
	case len(fields) == 1 && fields[0] == "stats":
		return "ok " + d.statsLine(), false
	case len(fields) > 2:
		return "err want: dest [user]", false
	}
	user := "%s"
	if len(fields) == 2 {
		user = fields[1]
	}
	res, err := d.store.Resolve(fields[0], user)
	if err != nil {
		return "err " + err.Error(), false
	}
	return "ok " + res.Address(), false
}

// serveConn runs the line protocol over one connection (or any
// read/write pair, e.g. stdin/stdout).
func (d *daemon) serveConn(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	bw := bufio.NewWriter(w)
	for sc.Scan() {
		reply, closing := d.handleLine(sc.Text())
		if _, err := bw.WriteString(reply + "\n"); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if closing {
			return nil
		}
	}
	return sc.Err()
}

// serveTCP accepts line-protocol connections until ctx is done.
func (d *daemon) serveTCP(ctx context.Context, ln net.Listener) {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			d.logf("accept: %v", err)
			continue
		}
		go func() {
			defer conn.Close()
			if err := d.serveConn(conn, conn); err != nil {
				d.logf("conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// statsSnapshot is the JSON shape of /stats.
type statsSnapshot struct {
	Routes     int       `json:"routes"`
	Swaps      uint64    `json:"swaps"`
	LoadedAt   time.Time `json:"loaded_at"`
	Lookups    uint64    `json:"lookups"`
	Resolves   uint64    `json:"resolves"`
	Hits       uint64    `json:"hits"`
	SuffixHits uint64    `json:"suffix_hits"`
	Misses     uint64    `json:"misses"`
}

func (d *daemon) snapshot() statsSnapshot {
	db := d.store.DB()
	s := db.Stats()
	d.mu.Lock()
	loadedAt := d.loadedAt
	d.mu.Unlock()
	return statsSnapshot{
		Routes:     db.Len(),
		Swaps:      d.swaps.Load(),
		LoadedAt:   loadedAt,
		Lookups:    s.Lookups,
		Resolves:   s.Resolves,
		Hits:       s.Hits,
		SuffixHits: s.SuffixHits,
		Misses:     s.Misses,
	}
}

func (d *daemon) statsLine() string {
	s := d.snapshot()
	return fmt.Sprintf("routes=%d swaps=%d lookups=%d resolves=%d hits=%d suffix_hits=%d misses=%d",
		s.Routes, s.Swaps, s.Lookups, s.Resolves, s.Hits, s.SuffixHits, s.Misses)
}

// handler builds the HTTP mux: GET /route?dest=...&user=..., /stats,
// /healthz.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /route", func(w http.ResponseWriter, r *http.Request) {
		dest := r.URL.Query().Get("dest")
		if dest == "" {
			http.Error(w, "missing dest parameter", http.StatusBadRequest)
			return
		}
		user := r.URL.Query().Get("user")
		if user == "" {
			user = "%s"
		}
		res, err := d.store.Resolve(dest, user)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, res.Address())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(d.snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// serveHTTP runs the HTTP endpoints until ctx is done.
func (d *daemon) serveHTTP(ctx context.Context, ln net.Listener) {
	srv := &http.Server{Handler: d.handler()}
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		d.logf("http: %v", err)
	}
}
