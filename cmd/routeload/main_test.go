package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeLineServer answers the routed line protocol: every request line
// gets "ok <line>", dests starting with "bad" get an err reply.
func fakeLineServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				bw := bufio.NewWriter(conn)
				for sc.Scan() {
					if strings.HasPrefix(sc.Text(), "bad") {
						fmt.Fprintf(bw, "err no route to %s\n", sc.Text())
					} else {
						fmt.Fprintf(bw, "ok %s\n", sc.Text())
					}
					bw.Flush()
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func writeHosts(t *testing.T, names ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "hosts")
	if err := os.WriteFile(path, []byte("# comment\n"+strings.Join(names, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func loadJSON(t *testing.T, args ...string) result {
	t.Helper()
	var out, errb strings.Builder
	if code := run(append(args, "-json"), &out, &errb); code != 0 {
		t.Fatalf("run(%v) = %d, stderr %q", args, code, errb.String())
	}
	var res result
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("bad JSON %q: %v", out.String(), err)
	}
	return res
}

func TestTCPPipelined(t *testing.T) {
	addr := fakeLineServer(t)
	hosts := writeHosts(t, "duke", "research", "ucbvax")
	res := loadJSON(t, "-tcp", addr, "-hosts", hosts, "-n", "100", "-c", "2", "-depth", "16")
	if res.Mode != "tcp" || res.Requests != 100 || res.Errors != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.QPS <= 0 || res.P50us < 0 || res.P99us < res.P50us {
		t.Errorf("implausible latency stats: %+v", res)
	}
}

func TestTCPStopAndWait(t *testing.T) {
	addr := fakeLineServer(t)
	hosts := writeHosts(t, "duke")
	res := loadJSON(t, "-tcp", addr, "-hosts", hosts, "-n", "20", "-depth", "1")
	if res.Requests != 20 || res.Depth != 1 {
		t.Errorf("result = %+v", res)
	}
}

func TestTCPErrorsCounted(t *testing.T) {
	addr := fakeLineServer(t)
	hosts := writeHosts(t, "duke", "badhost")
	res := loadJSON(t, "-tcp", addr, "-hosts", hosts, "-n", "10", "-depth", "4")
	if res.Errors != 5 {
		t.Errorf("errors = %d, want 5 (half the round-robin)", res.Errors)
	}
}

func TestHTTPBulk(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/routes" {
			http.Error(w, "wrong endpoint", http.StatusNotFound)
			return
		}
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			fmt.Fprintf(w, "ok %s\n", sc.Text())
		}
	}))
	defer srv.Close()
	hosts := writeHosts(t, "duke", "research")
	res := loadJSON(t, "-http", srv.URL, "-hosts", hosts, "-n", "50", "-depth", "8")
	if res.Mode != "http" || res.Requests != 50 || res.Errors != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestDestsFromDB(t *testing.T) {
	db := filepath.Join(t.TempDir(), "routes.db")
	if err := os.WriteFile(db, []byte("500\tduke\tduke!%s\n10\t.edu\tseismo!%s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dests, err := loadDests(db, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(dests) != 2 {
		t.Errorf("dests = %v, want 2 hosts", dests)
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errb strings.Builder
	for _, args := range [][]string{
		{},                            // no target
		{"-tcp", "x:1", "-http", "u"}, // both targets
		{"-tcp", "x:1"},               // no dest source
		{"-tcp", "x:1", "-hosts", "h", "-d", "f"}, // both sources
		{"-tcp", "x:1", "-hosts", "h", "-n", "0"}, // bad n
	} {
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
