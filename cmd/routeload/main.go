// Command routeload drives lookup traffic against a running routed
// daemon and reports throughput and latency — the measuring half of the
// serving hot path. It speaks both server surfaces:
//
//	routeload -tcp  host:port -d routes.db          # line protocol
//	routeload -http http://host:port -d routes.db   # POST /routes bulk
//
// Destinations are drawn round-robin from a route database (-d, text or
// compiled binary) or a plain list of names (-hosts). -depth sets the
// pipeline depth: 1 means one request per round trip (the classic
// stop-and-wait baseline), larger values batch that many requests on
// the wire before reading replies, which is where the pipelined
// protocol earns its throughput. -c opens that many concurrent
// connections, each pipelining independently.
//
// Output is a one-line human summary, or with -json a machine-readable
// record (QPS, p50/p90/p99/max latency, error count, GOMAXPROCS) meant
// to be collected into BENCH_serve.json. With -scrape url, routeload
// also fetches the daemon's /metrics after the run and reports the
// server-side latency histogram next to the client numbers, so wire
// cost and server cost separate at a glance.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"pathalias/internal/obs"
	"pathalias/internal/routedb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// result is the machine-readable record one routeload run emits.
type result struct {
	Mode      string  `json:"mode"` // "tcp" or "http"
	Target    string  `json:"target"`
	Conns     int     `json:"conns"`
	Depth     int     `json:"depth"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Secs      float64 `json:"secs"`
	QPS       float64 `json:"qps"`
	P50us     float64 `json:"p50_us"`
	P90us     float64 `json:"p90_us"`
	P99us     float64 `json:"p99_us"`
	MaxUs     float64 `json:"max_us"`
	GoMaxProc int     `json:"gomaxprocs"`

	// Server-side latency scraped from routed's /metrics after the run
	// (-scrape). Client latency includes the wire and the batching; the
	// server histogram is what routed itself spent per request, so the
	// gap between the two is the transport. Bucket-interpolated, so
	// coarser than the client's exact samples.
	SrvSamples uint64  `json:"srv_samples,omitempty"`
	SrvP50us   float64 `json:"srv_p50_us,omitempty"`
	SrvP99us   float64 `json:"srv_p99_us,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("routeload", flag.ContinueOnError)
	var (
		tcpAddr = fs.String("tcp", "", "routed line-protocol address (host:port)")
		httpURL = fs.String("http", "", "routed HTTP base URL (http://host:port); drives POST /routes")
		dbPath  = fs.String("d", "", "route database (text or binary) to draw destination names from")
		hosts   = fs.String("hosts", "", "file of destination names, one per line (alternative to -d)")
		n       = fs.Int("n", 10000, "total requests to send")
		conns   = fs.Int("c", 1, "concurrent connections")
		depth   = fs.Int("depth", 64, "pipeline depth: requests on the wire per batch (1 = stop-and-wait baseline)")
		user    = fs.String("user", "user", "user name sent with every request")
		from    = fs.String("f", "", "vantage host: prefix every request with from=<host> (server in -map mode)")
		jsonOut = fs.Bool("json", false, "emit the result as one JSON object")
		scrape  = fs.String("scrape", "", "routed /metrics URL: after the run, report the server-side latency histogram next to the client numbers")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*tcpAddr == "") == (*httpURL == "") {
		fmt.Fprintln(stderr, "routeload: exactly one of -tcp or -http is required")
		return 2
	}
	if (*dbPath == "") == (*hosts == "") {
		fmt.Fprintln(stderr, "routeload: exactly one of -d or -hosts is required")
		return 2
	}
	if *n <= 0 || *conns <= 0 || *depth <= 0 {
		fmt.Fprintln(stderr, "routeload: -n, -c and -depth must be positive")
		return 2
	}

	dests, err := loadDests(*dbPath, *hosts)
	if err != nil {
		fmt.Fprintf(stderr, "routeload: %v\n", err)
		return 1
	}
	if len(dests) == 0 {
		fmt.Fprintln(stderr, "routeload: no destination names to query")
		return 1
	}
	lines := requestLines(dests, *from, *user)

	res := result{
		Conns:     *conns,
		Depth:     *depth,
		Requests:  *n,
		GoMaxProc: runtime.GOMAXPROCS(0),
	}
	var lats []time.Duration
	var errs int
	start := time.Now()
	if *tcpAddr != "" {
		res.Mode, res.Target = "tcp", *tcpAddr
		lats, errs, err = driveTCP(*tcpAddr, lines, *n, *conns, *depth)
	} else {
		res.Mode, res.Target = "http", *httpURL
		lats, errs, err = driveHTTP(*httpURL, lines, *n, *conns, *depth)
	}
	if err != nil {
		fmt.Fprintf(stderr, "routeload: %v\n", err)
		return 1
	}
	res.Secs = time.Since(start).Seconds()
	res.Errors = errs
	res.QPS = float64(len(lats)) / res.Secs
	res.Requests = len(lats)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.P50us = us(percentile(lats, 0.50))
	res.P90us = us(percentile(lats, 0.90))
	res.P99us = us(percentile(lats, 0.99))
	if len(lats) > 0 {
		res.MaxUs = us(lats[len(lats)-1])
	}

	if *scrape != "" {
		surface := "line"
		if res.Mode == "http" {
			surface = "http_routes"
		}
		if err := scrapeServer(&res, *scrape, surface); err != nil {
			fmt.Fprintf(stderr, "routeload: scrape %s: %v\n", *scrape, err)
			return 1
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(stderr, "routeload: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "%s %s: %d reqs, %d conns, depth %d: %.0f qps, p50 %.0fµs p90 %.0fµs p99 %.0fµs max %.0fµs, %d errors",
		res.Mode, res.Target, res.Requests, res.Conns, res.Depth, res.QPS, res.P50us, res.P90us, res.P99us, res.MaxUs, res.Errors)
	if res.SrvSamples > 0 {
		fmt.Fprintf(stdout, " | server: %d samples, p50 %.0fµs p99 %.0fµs", res.SrvSamples, res.SrvP50us, res.SrvP99us)
	}
	fmt.Fprintln(stdout)
	return 0
}

// scrapeServer fetches routed's /metrics and fills in the server-side
// request-latency quantiles for the surface this run drove: "line" for
// -tcp, "http_routes" for -http (POST /routes observes batch means).
func scrapeServer(res *result, url, surface string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", resp.Status)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		return err
	}
	pts := obs.HistogramBuckets(samples, "routed_request_seconds", map[string]string{"surface": surface})
	if len(pts) == 0 {
		return fmt.Errorf("no routed_request_seconds{surface=%q} series (old routed, or wrong URL?)", surface)
	}
	res.SrvSamples = uint64(pts[len(pts)-1].Count)
	res.SrvP50us = obs.HistogramQuantile(0.50, pts) * 1e6
	res.SrvP99us = obs.HistogramQuantile(0.99, pts) * 1e6
	return nil
}

// loadDests returns the destination names to query: the hosts of every
// entry in a route database, or the lines of a -hosts file.
func loadDests(dbPath, hostsPath string) ([]string, error) {
	if hostsPath != "" {
		data, err := os.ReadFile(hostsPath)
		if err != nil {
			return nil, err
		}
		var dests []string
		for _, l := range strings.Split(string(data), "\n") {
			if l = strings.TrimSpace(l); l != "" && !strings.HasPrefix(l, "#") {
				dests = append(dests, l)
			}
		}
		return dests, nil
	}
	isBin, err := routedb.IsBinaryFile(dbPath)
	if err != nil {
		return nil, err
	}
	var db *routedb.DB
	if isBin {
		db, err = routedb.OpenBinary(dbPath)
	} else {
		var f *os.File
		if f, err = os.Open(dbPath); err == nil {
			db, err = routedb.Load(f)
			f.Close()
		}
	}
	if err != nil {
		return nil, err
	}
	defer db.Close()
	dests := make([]string, 0, db.Len())
	for _, e := range db.Entries() {
		dests = append(dests, e.Host)
	}
	return dests, nil
}

// requestLines pre-renders one protocol line per destination so the hot
// loop only writes bytes.
func requestLines(dests []string, from, user string) [][]byte {
	prefix := ""
	if from != "" {
		prefix = "from=" + from + " "
	}
	lines := make([][]byte, len(dests))
	for i, d := range dests {
		lines[i] = []byte(prefix + d + " " + user + "\n")
	}
	return lines
}

// driveTCP sends total requests over conns connections speaking the
// line protocol, depth requests on the wire per batch. Latency for each
// request is measured from the batch flush to its reply line — at
// depth 1 that is the classic per-request round trip.
func driveTCP(addr string, lines [][]byte, total, conns, depth int) ([]time.Duration, int, error) {
	return drive(total, conns, func(worker, offset, count int) ([]time.Duration, int, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, 0, err
		}
		defer conn.Close()
		bw := bufio.NewWriterSize(conn, 64<<10)
		br := bufio.NewReaderSize(conn, 64<<10)
		lats := make([]time.Duration, 0, count)
		errs := 0
		for sent := 0; sent < count; {
			batch := min(depth, count-sent)
			for i := 0; i < batch; i++ {
				if _, err := bw.Write(lines[(offset+sent+i)%len(lines)]); err != nil {
					return nil, 0, err
				}
			}
			t0 := time.Now()
			if err := bw.Flush(); err != nil {
				return nil, 0, err
			}
			for i := 0; i < batch; i++ {
				reply, err := br.ReadString('\n')
				if err != nil {
					return nil, 0, fmt.Errorf("reading reply: %w", err)
				}
				lats = append(lats, time.Since(t0))
				if strings.HasPrefix(reply, "err ") {
					errs++
				}
			}
			sent += batch
		}
		return lats, errs, nil
	})
}

// driveHTTP posts batches of depth request lines to <base>/routes from
// conns workers. Every request in a batch gets the batch's round-trip
// latency — the same accounting as pipelined TCP.
func driveHTTP(base string, lines [][]byte, total, conns, depth int) ([]time.Duration, int, error) {
	url := strings.TrimSuffix(base, "/") + "/routes"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: conns}}
	defer client.CloseIdleConnections()
	return drive(total, conns, func(worker, offset, count int) ([]time.Duration, int, error) {
		lats := make([]time.Duration, 0, count)
		errs := 0
		var body bytes.Buffer
		for sent := 0; sent < count; {
			batch := min(depth, count-sent)
			body.Reset()
			for i := 0; i < batch; i++ {
				body.Write(lines[(offset+sent+i)%len(lines)])
			}
			t0 := time.Now()
			resp, err := client.Post(url, "text/plain", bytes.NewReader(body.Bytes()))
			if err != nil {
				return nil, 0, err
			}
			replies, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, 0, err
			}
			if resp.StatusCode != http.StatusOK {
				return nil, 0, fmt.Errorf("POST /routes: %s", resp.Status)
			}
			d := time.Since(t0)
			got := 0
			for _, reply := range strings.SplitAfter(string(replies), "\n") {
				if reply == "" {
					continue
				}
				got++
				lats = append(lats, d)
				if strings.HasPrefix(reply, "err ") {
					errs++
				}
			}
			if got != batch {
				return nil, 0, fmt.Errorf("POST /routes: sent %d lines, got %d replies", batch, got)
			}
			sent += batch
		}
		return lats, errs, nil
	})
}

// drive splits total requests across conns workers and merges their
// latency samples and error counts.
func drive(total, conns int, worker func(worker, offset, count int) ([]time.Duration, int, error)) ([]time.Duration, int, error) {
	type out struct {
		lats []time.Duration
		errs int
		err  error
	}
	outs := make([]out, conns)
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		count := total / conns
		if w < total%conns {
			count++
		}
		if count == 0 {
			continue
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			lats, errs, err := worker(w, w*count, count)
			outs[w] = out{lats, errs, err}
		}(w, count)
	}
	wg.Wait()
	var lats []time.Duration
	errs := 0
	for _, o := range outs {
		if o.err != nil {
			return nil, 0, o.err
		}
		lats = append(lats, o.lats...)
		errs += o.errs
	}
	return lats, errs, nil
}

// percentile returns the p-th percentile of sorted samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
