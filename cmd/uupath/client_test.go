package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
)

// fakeRouted speaks the routed line protocol well enough for client
// tests: "dest user" → "ok dest!user", dest "boom" → an err reply,
// pipelined (replies flush when the input is drained).
func fakeRouted(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				bw := bufio.NewWriter(conn)
				for sc.Scan() {
					fields := strings.Fields(sc.Text())
					from := ""
					if len(fields) > 0 && strings.HasPrefix(fields[0], "from=") {
						from = strings.TrimPrefix(fields[0], "from=") + ">"
						fields = fields[1:]
					}
					if len(fields) > 0 && strings.HasPrefix(fields[0], "overlay=") {
						from += "[" + strings.TrimPrefix(fields[0], "overlay=") + "]"
						fields = fields[1:]
					}
					switch {
					case len(fields) == 0:
						fmt.Fprintln(bw, "err empty request")
					case fields[0] == "boom":
						fmt.Fprintln(bw, "err no route to boom")
					default:
						user := "%s"
						if len(fields) > 1 {
							user = fields[1]
						}
						fmt.Fprintf(bw, "ok %s%s!%s\n", from, fields[0], user)
					}
				}
				bw.Flush()
			}()
		}
	}()
	return ln.Addr().String()
}

func TestClientSingleQuery(t *testing.T) {
	addr := fakeRouted(t)
	var out, errb strings.Builder
	if code := run([]string{"-server", addr, "duke", "honey"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	if got := out.String(); got != "duke!honey\n" {
		t.Errorf("stdout = %q, want %q", got, "duke!honey\n")
	}
}

func TestClientStdinPipelined(t *testing.T) {
	addr := fakeRouted(t)
	stdin := "duke honey\n\n  research pleasant  \nucbvax\n"
	var out, errb strings.Builder
	if code := run([]string{"-server", addr}, strings.NewReader(stdin), &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	want := "duke!honey\nresearch!pleasant\nucbvax!%s\n"
	if got := out.String(); got != want {
		t.Errorf("stdout = %q, want %q", got, want)
	}
}

func TestClientFromPrefix(t *testing.T) {
	addr := fakeRouted(t)
	var out, errb strings.Builder
	if code := run([]string{"-server", addr, "-f", "seismo", "duke"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	if got := out.String(); got != "seismo>duke!%s\n" {
		t.Errorf("stdout = %q, want %q", got, "seismo>duke!%s\n")
	}
}

// -x parses the spec locally, canonicalizes it to the whitespace-free
// comma form, and prefixes every request with overlay=<token> — after
// from=, matching the server grammar ("[from=host] [overlay=spec]
// dest [user]").
func TestClientOverlayPrefix(t *testing.T) {
	addr := fakeRouted(t)
	var out, errb strings.Builder
	args := []string{"-server", addr, "-f", "seismo", "-x", "cost a c DEMAND; dead a b", "duke"}
	if code := run(args, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	want := "seismo>[dead,a,b;cost,a,c,300]duke!%s\n"
	if got := out.String(); got != want {
		t.Errorf("stdout = %q, want %q", got, want)
	}
}

// The overlay prefix applies to every pipelined stdin line, not just
// single-query mode.
func TestClientOverlayStdin(t *testing.T) {
	addr := fakeRouted(t)
	var out, errb strings.Builder
	args := []string{"-server", addr, "-x", "dead a b"}
	if code := run(args, strings.NewReader("duke honey\nresearch\n"), &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errb.String())
	}
	want := "[dead,a,b]duke!honey\n[dead,a,b]research!%s\n"
	if got := out.String(); got != want {
		t.Errorf("stdout = %q, want %q", got, want)
	}
}

// A malformed -x spec fails fast at the client, before any connection,
// with the spec parser's message.
func TestClientOverlayBadSpec(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-server", "127.0.0.1:1", "-x", "dead a", "duke"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("bad -x spec = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "dead wants 2 arguments") {
		t.Errorf("stderr = %q, want the parse error surfaced", errb.String())
	}
}

// -x needs a daemon: the local -d/-maps modes have no overlay
// machinery.
func TestClientOverlayRequiresServer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-d", "routes.db", "-x", "dead a b", "duke"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("-x without -server = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-x requires -server") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestClientErrReply(t *testing.T) {
	addr := fakeRouted(t)
	stdin := "duke\nboom\nresearch\n"
	var out, errb strings.Builder
	if code := run([]string{"-server", addr}, strings.NewReader(stdin), &out, &errb); code != 1 {
		t.Fatalf("run = %d, want 1 (an err reply)", code)
	}
	if got := out.String(); got != "duke!%s\nresearch!%s\n" {
		t.Errorf("stdout = %q", got)
	}
	if !strings.Contains(errb.String(), "no route to boom") {
		t.Errorf("stderr = %q, want the err reply surfaced", errb.String())
	}
}

func TestClientRejectsLocalFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-server", "x:1", "-d", "routes.db", "duke"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("-server with -d = %d, want usage error 2", code)
	}
}

func TestClientDialError(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-server", "127.0.0.1:1", "duke"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Errorf("dial failure = %d, want 1", code)
	}
}
