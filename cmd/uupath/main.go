// Command uupath queries a route database the way a user or delivery
// agent would — the "manual querying by users" integration the paper
// calls the simplest, plus the delivery-agent rewriting modes.
//
// Usage:
//
//	uupath -d routes.db dest [user]          # route to a destination
//	uupath -d routes.db -r [-m mode] addr    # rewrite a relative address
//	uupath -d routes.db -guess addr          # disambiguate mixed syntax
//
// Examples:
//
//	$ uupath -d routes.db mit-ai honey
//	duke!research!ucbvax!honey@mit-ai
//
//	$ uupath -d routes.db -r -m rightmost -local unc a!b!seismo!mcvax!piet
//	seismo!mcvax!piet
//
// Rewrite modes: off (leave the path alone), firsthop (route to the first
// host), rightmost (collapse to the rightmost known host — "can result in
// significant savings; unfortunately, it can backfire").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pathalias/internal/mailer"
	"pathalias/internal/routedb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uupath", flag.ContinueOnError)
	var (
		dbPath  = fs.String("d", "", "route database file (required)")
		rewrite = fs.Bool("r", false, "rewrite a relative address instead of routing to a destination")
		mode    = fs.String("m", "firsthop", "rewrite mode: off, firsthop, rightmost")
		local   = fs.String("local", "localhost", "local host name for rewriting")
		guess   = fs.String("guess", "", "disambiguate a mixed-syntax address against the database")
		fold    = fs.Bool("i", false, "case-fold queries (for maps computed with pathalias -i)")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dbPath == "" || (fs.NArg() < 1 && *guess == "") {
		fmt.Fprintln(stderr, "usage: uupath -d routes.db [-r [-m mode] [-local host]] dest [user]")
		return 2
	}

	f, err := os.Open(*dbPath)
	if err != nil {
		fmt.Fprintf(stderr, "uupath: %v\n", err)
		return 1
	}
	db, err := routedb.LoadWith(f, routedb.Options{FoldCase: *fold})
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "uupath: %v\n", err)
		return 1
	}

	if *guess != "" {
		rw := &mailer.Rewriter{DB: db, Local: *local}
		a, err := rw.BestGuess(*guess)
		if err != nil {
			fmt.Fprintf(stderr, "uupath: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, a.String())
		return 0
	}

	if *rewrite {
		var m mailer.OptimizeMode
		switch *mode {
		case "off":
			m = mailer.OptimizeOff
		case "firsthop":
			m = mailer.OptimizeFirstHop
		case "rightmost":
			m = mailer.OptimizeRightmost
		default:
			fmt.Fprintf(stderr, "uupath: unknown mode %q\n", *mode)
			return 2
		}
		rw := &mailer.Rewriter{DB: db, Local: *local, Mode: m}
		out, err := rw.Route(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "uupath: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, out)
		return 0
	}

	user := "%s"
	if fs.NArg() > 1 {
		user = fs.Arg(1)
	}
	res, err := db.Resolve(fs.Arg(0), user)
	if err != nil {
		fmt.Fprintf(stderr, "uupath: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, res.Address())
	return 0
}
