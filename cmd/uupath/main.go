// Command uupath queries a route database the way a user or delivery
// agent would — the "manual querying by users" integration the paper
// calls the simplest, plus the delivery-agent rewriting modes.
//
// Usage:
//
//	uupath -d routes.db dest [user]          # route to a destination
//	uupath -d routes.rdb dest [user]         # same, compiled database
//	uupath -d routes.db -r [-m mode] addr    # rewrite a relative address
//	uupath -d routes.db -guess addr          # disambiguate mixed syntax
//	uupath -maps a.map,b.map -f from dest    # route from another vantage
//	uupath -server host:port dest [user]     # ask a running routed daemon
//	uupath -server host:port < dests         # bulk: stream stdin, pipelined
//	uupath -server host:port -x 'dead a b' dest   # what-if: route under edits
//
// The -d file's format is auto-detected by its magic bytes: a compiled
// binary database (mkdb -binary, pathalias -o-db) is memory-mapped and
// served with no parsing — the instant-start path — while anything
// else is parsed as the classic linear text file.
//
// With -maps, uupath computes routes in-process from map sources instead
// of loading a precompiled database, and -f picks the vantage host the
// route originates at — the multi-source question ("how does duke reach
// ucbvax?") that a single routes.db, compiled for one LocalHost, cannot
// answer. All query modes (-r, -guess, plain dest) work against the
// computed vantage.
//
// With -server, -x sends every query under a what-if overlay: a
// spec of "dead a b", "cost a b EXPR", and "link a b N" edits
// (semicolon-separated) that the daemon applies to a scratch copy of
// the map before routing — the served tables are untouched. The
// daemon must be running in -map mode.
//
// Examples:
//
//	$ uupath -d routes.db mit-ai honey
//	duke!research!ucbvax!honey@mit-ai
//
//	$ uupath -maps testdata/paper1981.map -f duke ucbvax honey
//	research!ucbvax!honey
//
//	$ uupath -d routes.db -r -m rightmost -local unc a!b!seismo!mcvax!piet
//	seismo!mcvax!piet
//
// Rewrite modes: off (leave the path alone), firsthop (route to the first
// host), rightmost (collapse to the rightmost known host — "can result in
// significant savings; unfortunately, it can backfire").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"pathalias/internal/mailer"
	"pathalias/internal/remap"
	"pathalias/internal/routedb"
	"pathalias/internal/whatif"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uupath", flag.ContinueOnError)
	var (
		dbPath  = fs.String("d", "", "route database file")
		maps    = fs.String("maps", "", "comma-separated map source files: compute routes in-process instead of -d")
		from    = fs.String("f", "", "vantage host routes originate at (requires -maps)")
		server  = fs.String("server", "", "routed line-protocol address: query a running daemon instead of a local database (pipelined)")
		rewrite = fs.Bool("r", false, "rewrite a relative address instead of routing to a destination")
		mode    = fs.String("m", "firsthop", "rewrite mode: off, firsthop, rightmost")
		local   = fs.String("local", "localhost", "local host name for rewriting")
		guess   = fs.String("guess", "", "disambiguate a mixed-syntax address against the database")
		fold    = fs.Bool("i", false, "case-fold queries (for maps computed with pathalias -i)")
		overlay = fs.String("x", "", "what-if overlay spec, e.g. 'dead a b; cost a c DEMAND' (requires -server to a -map daemon)")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usage := func() int {
		fmt.Fprintln(stderr, "usage: uupath -d routes.db [-r [-m mode] [-local host]] dest [user]")
		fmt.Fprintln(stderr, "       uupath -maps file,... -f from [-r [-m mode]] dest [user]")
		fmt.Fprintln(stderr, "       uupath -server host:port [-f from] [-x overlay] [dest [user]]  (no args: stream stdin, pipelined)")
		return 2
	}
	if *server != "" {
		if *dbPath != "" || *maps != "" || *rewrite || *guess != "" {
			return usage()
		}
		// Parse the overlay locally so a typo fails fast with the spec
		// parser's message instead of one "err ..." reply per query, and
		// send the canonical single-token form the line protocol wants.
		overlayTok := ""
		if *overlay != "" {
			sp, err := whatif.ParseSpec(*overlay)
			if err != nil {
				fmt.Fprintf(stderr, "uupath: -x: %v\n", err)
				return 2
			}
			overlayTok = sp.LineToken()
		}
		return runClient(*server, *from, overlayTok, fs.Args(), stdin, stdout, stderr)
	}
	if *overlay != "" {
		fmt.Fprintln(stderr, "uupath: -x requires -server (what-if overlays are evaluated by a -map daemon)")
		return 2
	}
	switch {
	case (*dbPath == "") == (*maps == ""): // exactly one source of routes
		return usage()
	case *maps != "" && *from == "":
		fmt.Fprintln(stderr, "uupath: -maps requires -f <from> (the vantage host)")
		return 2
	case *maps == "" && *from != "":
		fmt.Fprintln(stderr, "uupath: -f requires -maps (a routes.db is compiled for one vantage)")
		return 2
	case fs.NArg() < 1 && *guess == "":
		return usage()
	}

	var db *routedb.DB
	if *maps != "" {
		var err error
		db, err = vantageDB(strings.Split(*maps, ","), *from, *fold)
		if err != nil {
			fmt.Fprintf(stderr, "uupath: %v\n", err)
			return 1
		}
	} else {
		var err error
		db, err = openDB(*dbPath, *fold, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "uupath: %v\n", err)
			return 1
		}
		defer db.Close()
	}

	if *guess != "" {
		rw := &mailer.Rewriter{DB: db, Local: *local}
		a, err := rw.BestGuess(*guess)
		if err != nil {
			fmt.Fprintf(stderr, "uupath: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, a.String())
		return 0
	}

	if *rewrite {
		var m mailer.OptimizeMode
		switch *mode {
		case "off":
			m = mailer.OptimizeOff
		case "firsthop":
			m = mailer.OptimizeFirstHop
		case "rightmost":
			m = mailer.OptimizeRightmost
		default:
			fmt.Fprintf(stderr, "uupath: unknown mode %q\n", *mode)
			return 2
		}
		rw := &mailer.Rewriter{DB: db, Local: *local, Mode: m}
		out, err := rw.Route(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "uupath: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, out)
		return 0
	}

	user := "%s"
	if fs.NArg() > 1 {
		user = fs.Arg(1)
	}
	res, err := db.Resolve(fs.Arg(0), user)
	if err != nil {
		fmt.Fprintf(stderr, "uupath: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, res.Address())
	return 0
}

// openDB loads a route database of either format, sniffing the magic
// bytes: a compiled binary database (mkdb -binary, pathalias -o-db) is
// memory-mapped and served with no parse; anything else is parsed as
// the linear text file. A binary file's own fold-case setting wins
// over -i (with a note when they disagree).
func openDB(path string, fold bool, stderr io.Writer) (*routedb.DB, error) {
	isBin, err := routedb.IsBinaryFile(path)
	if err != nil {
		return nil, err
	}
	if isBin {
		db, err := routedb.OpenBinary(path)
		if err != nil {
			return nil, err
		}
		if db.Options().FoldCase != fold {
			fmt.Fprintf(stderr, "uupath: note: %s was compiled with FoldCase=%v; the file's setting wins\n",
				path, db.Options().FoldCase)
		}
		return db, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return routedb.LoadWith(f, routedb.Options{FoldCase: fold})
}

// runClient queries a running routed daemon over the line protocol —
// the delivery-agent integration for a shared long-lived database.
// With positional args it sends one query and prints the address. With
// none it streams "dest [user]" lines from stdin to the server
// *pipelined*: requests are written as fast as stdin supplies them
// while replies are read concurrently, so resolving a large batch costs
// about one network round trip instead of one per line. -f prefixes
// every request with from=<host>, -x with overlay=<spec> (both need
// the server in -map mode). Addresses print on stdout in request
// order; "err" replies go to stderr and make the exit status 1.
func runClient(addr, from, overlayTok string, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "uupath: %v\n", err)
		return 1
	}
	defer conn.Close()
	prefix := ""
	if from != "" {
		prefix = "from=" + from + " "
	}
	if overlayTok != "" {
		prefix += "overlay=" + overlayTok + " "
	}

	// Writer side: stream requests without waiting for replies, then
	// half-close so the server answers everything and hangs up.
	var werr error
	go func() {
		defer func() {
			if cw, ok := conn.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite()
			}
		}()
		if len(args) > 0 {
			_, werr = fmt.Fprintf(conn, "%s%s\n", prefix, strings.Join(args, " "))
			return
		}
		sc := bufio.NewScanner(stdin)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if _, err := fmt.Fprintf(conn, "%s%s\n", prefix, line); err != nil {
				werr = err
				return
			}
		}
		werr = sc.Err()
	}()

	failed := false
	rd := bufio.NewScanner(conn)
	rd.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for rd.Scan() {
		reply := rd.Text()
		switch {
		case strings.HasPrefix(reply, "ok "):
			fmt.Fprintln(stdout, reply[len("ok "):])
		case strings.HasPrefix(reply, "err "):
			fmt.Fprintf(stderr, "uupath: %s\n", reply[len("err "):])
			failed = true
		default:
			fmt.Fprintf(stderr, "uupath: unexpected reply %q\n", reply)
			failed = true
		}
	}
	if err := rd.Err(); err != nil {
		fmt.Fprintf(stderr, "uupath: %v\n", err)
		return 1
	}
	if werr != nil {
		fmt.Fprintf(stderr, "uupath: %v\n", werr)
		return 1
	}
	if failed {
		return 1
	}
	return 0
}

// vantageDB computes the route database for one vantage of the given
// map sources, through the multi-source engine (shared parse and graph,
// one mapping run for the requested vantage).
func vantageDB(paths []string, from string, fold bool) (*routedb.DB, error) {
	eng, err := remap.NewMulti(remap.Options{FoldCase: fold})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	ins := make([]remap.Input, 0, len(paths))
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		ins = append(ins, remap.Input{Name: p, Src: string(data)})
	}
	if err := eng.Update(ins); err != nil {
		return nil, err
	}
	res, err := eng.ResultFor(from)
	if err != nil {
		return nil, err
	}
	return routedb.BuildWith(res.Entries, routedb.Options{FoldCase: fold}), nil
}
