package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathalias/internal/routedb"
)

const binRoutes = "0\tunc\t%s\n500\tduke\tduke!%s\n10\t.edu\tseismo!%s\n"

// writeBoth writes the same database as text and compiled binary.
func writeBoth(t *testing.T, fold bool) (txtPath, rdbPath string) {
	t.Helper()
	dir := t.TempDir()
	txtPath = filepath.Join(dir, "routes.db")
	if err := os.WriteFile(txtPath, []byte(binRoutes), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := routedb.LoadWith(strings.NewReader(binRoutes), routedb.Options{FoldCase: fold})
	if err != nil {
		t.Fatal(err)
	}
	rdbPath = filepath.Join(dir, "routes.rdb")
	f, err := os.Create(rdbPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return txtPath, rdbPath
}

// TestAutoDetectBinary: -d with a compiled file answers identically to
// -d with the text file, with no extra flag.
func TestAutoDetectBinary(t *testing.T) {
	txtPath, rdbPath := writeBoth(t, false)
	for _, args := range [][]string{
		{"caip.rutgers.edu", "pleasant"},
		{"duke", "honey"},
		{"-r", "-m", "rightmost", "-local", "unc", "a!duke!honey"},
	} {
		var wantOut, gotOut, errw strings.Builder
		if code := run(append([]string{"-d", txtPath}, args...), strings.NewReader(""), &wantOut, &errw); code != 0 {
			t.Fatalf("text run %v: exit %d: %s", args, code, errw.String())
		}
		if code := run(append([]string{"-d", rdbPath}, args...), strings.NewReader(""), &gotOut, &errw); code != 0 {
			t.Fatalf("binary run %v: exit %d: %s", args, code, errw.String())
		}
		if gotOut.String() != wantOut.String() {
			t.Errorf("args %v: binary output %q != text output %q", args, gotOut.String(), wantOut.String())
		}
	}
}

// TestBinaryFoldNote: when -i disagrees with the compiled file's
// fold-case flag, the file wins and uupath says so.
func TestBinaryFoldNote(t *testing.T) {
	_, rdbPath := writeBoth(t, true)
	var out, errw strings.Builder
	if code := run([]string{"-d", rdbPath, "DUKE", "honey"}, strings.NewReader(""), &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if out.String() != "duke!honey\n" {
		t.Errorf("folded lookup = %q", out.String())
	}
	if !strings.Contains(errw.String(), "FoldCase=true") {
		t.Errorf("no fold note on stderr: %q", errw.String())
	}
}
