package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDB(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "routes.db")
	db := "0\t.edu\tseismo!%s\n500\tmcvax\tseismo!mcvax!%s\n100\tseismo\tseismo!%s\n"
	if err := os.WriteFile(p, []byte(db), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestResolveDestination(t *testing.T) {
	db := writeDB(t)
	var out, errb strings.Builder
	if code := run([]string{"-d", db, "mcvax", "piet"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "seismo!mcvax!piet" {
		t.Errorf("output = %q", out.String())
	}
}

func TestResolveWithoutUserKeepsMarker(t *testing.T) {
	db := writeDB(t)
	var out, errb strings.Builder
	if code := run([]string{"-d", db, "seismo"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.TrimSpace(out.String()) != "seismo!%s" {
		t.Errorf("output = %q", out.String())
	}
}

func TestResolveDomainSuffix(t *testing.T) {
	db := writeDB(t)
	var out, errb strings.Builder
	if code := run([]string{"-d", db, "caip.rutgers.edu", "pleasant"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.TrimSpace(out.String()) != "seismo!caip.rutgers.edu!pleasant" {
		t.Errorf("output = %q", out.String())
	}
}

func TestRewriteModes(t *testing.T) {
	db := writeDB(t)
	cases := []struct {
		mode string
		want string
	}{
		{"off", "a!b!seismo!mcvax!piet"},
		{"firsthop", ""}, // first hop "a" unknown: error
		{"rightmost", "seismo!mcvax!piet"},
	}
	for _, c := range cases {
		var out, errb strings.Builder
		code := run([]string{"-d", db, "-r", "-m", c.mode, "-local", "here", "a!b!seismo!mcvax!piet"}, strings.NewReader(""), &out, &errb)
		if c.want == "" {
			if code == 0 {
				t.Errorf("mode %s: expected failure", c.mode)
			}
			continue
		}
		if code != 0 {
			t.Errorf("mode %s: exit %d: %s", c.mode, code, errb.String())
			continue
		}
		if strings.TrimSpace(out.String()) != c.want {
			t.Errorf("mode %s: output %q want %q", c.mode, out.String(), c.want)
		}
	}
}

func TestGuessFlag(t *testing.T) {
	db := writeDB(t) // knows seismo, mcvax, .edu
	var out, errb strings.Builder
	// Ambiguous a!b!user@seismo: RFC822 reading (seismo first) resolves,
	// UUCP reading (a first) does not.
	if code := run([]string{"-d", db, "-guess", "a!b!user@seismo"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "seismo!a!b!user" {
		t.Errorf("guess = %q", out.String())
	}
	out.Reset()
	if code := run([]string{"-d", db, "-guess", "mcvax!user@unknown"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.TrimSpace(out.String()) != "mcvax!unknown!user" {
		t.Errorf("guess = %q", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("no args: exit %d want 2", code)
	}
	if code := run([]string{"-d", "/nonexistent", "x"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Errorf("bad db: exit %d want 1", code)
	}
	db := writeDB(t)
	if code := run([]string{"-d", db, "-r", "-m", "bogus", "x!y"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("bad mode: exit %d want 2", code)
	}
	if code := run([]string{"-d", db, "unknowable"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Errorf("no route: exit %d want 1", code)
	}
}

const vantageMapSrc = `unc	duke(HOURLY), phs(HOURLY*4)
duke	unc(DEMAND), research(DAILY/2), phs(DEMAND)
phs	unc(HOURLY*4), duke(HOURLY)
research	duke(DEMAND), ucbvax(DEMAND)
ucbvax	research(DAILY)
`

func writeMap(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.map")
	if err := os.WriteFile(path, []byte(vantageMapSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVantageQueries covers -maps/-f: routes computed in-process from
// map sources, originating at the requested vantage host.
func TestVantageQueries(t *testing.T) {
	mapPath := writeMap(t)
	cases := []struct {
		from, dest, want string
	}{
		{"unc", "ucbvax", "duke!research!ucbvax!honey"},
		{"duke", "ucbvax", "research!ucbvax!honey"},
		{"ucbvax", "unc", "research!duke!unc!honey"},
	}
	for _, c := range cases {
		var out, errb strings.Builder
		if code := run([]string{"-maps", mapPath, "-f", c.from, c.dest, "honey"}, strings.NewReader(""), &out, &errb); code != 0 {
			t.Fatalf("-f %s %s: exit %d, stderr %s", c.from, c.dest, code, errb.String())
		}
		if got := strings.TrimSpace(out.String()); got != c.want {
			t.Errorf("-f %s %s = %q, want %q", c.from, c.dest, got, c.want)
		}
	}
}

// TestVantageUsageErrors: -maps and -f come as a pair, and -d excludes
// them.
func TestVantageUsageErrors(t *testing.T) {
	mapPath := writeMap(t)
	var out, errb strings.Builder
	if code := run([]string{"-maps", mapPath, "x"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("-maps without -f: exit %d want 2", code)
	}
	if code := run([]string{"-d", "x.db", "-f", "unc", "x"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("-f with -d: exit %d want 2", code)
	}
	if code := run([]string{"-maps", mapPath, "-d", "x.db", "-f", "unc", "x"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("-maps with -d: exit %d want 2", code)
	}
	if code := run([]string{"-maps", mapPath, "-f", "nosuchhost", "duke"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Errorf("unknown vantage: exit %d want 1", code)
	}
}
