// Command routediff compares two pathalias route files and reports what
// changed — the check administrators ran when each month's UUCP map batch
// arrived.
//
// Usage:
//
//	routediff old.db new.db
//
// Output, one change per line, is one of:
//
//	added     host   route (cost)
//	removed   host   route (cost)
//	rerouted  host   oldroute (cost) -> newroute (cost)
//	recosted  host   route (oldcost) -> route (newcost)
//
// Exit status is 0 when the route sets are identical, 3 when they differ,
// 1 on errors (mirroring diff(1)'s convention, with 3 instead of 1 so
// errors stay distinguishable).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pathalias/internal/routedb"
	"pathalias/internal/whatif/diff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("routediff", flag.ContinueOnError)
	summary := fs.Bool("s", false, "print only the change summary")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: routediff [-s] old.db new.db")
		return 2
	}

	load := func(path string) (*routedb.DB, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return routedb.Load(f)
	}
	old, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "routediff: %v\n", err)
		return 1
	}
	new, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "routediff: %v\n", err)
		return 1
	}

	changes := diff.Diff(old.Entries(), new.Entries())
	if !*summary {
		if err := diff.WriteChanges(stdout, changes); err != nil {
			fmt.Fprintf(stderr, "routediff: %v\n", err)
			return 1
		}
	}
	st := diff.Summarize(changes)
	fmt.Fprintf(stderr, "routediff: %d added, %d removed, %d rerouted, %d recosted (%d routes -> %d)\n",
		st.Added, st.Removed, st.Rerouted, st.Recosted, old.Len(), new.Len())
	if len(changes) > 0 {
		return 3
	}
	return 0
}
