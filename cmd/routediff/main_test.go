package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDB(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestIdenticalExitZero(t *testing.T) {
	a := writeDB(t, "a.db", "100\tduke\tduke!%s\n")
	b := writeDB(t, "b.db", "100\tduke\tduke!%s\n")
	var out, errb strings.Builder
	if code := run([]string{a, b}, &out, &errb); code != 0 {
		t.Errorf("exit %d want 0; stderr %s", code, errb.String())
	}
	if out.String() != "" {
		t.Errorf("output = %q", out.String())
	}
}

func TestDifferencesExitThree(t *testing.T) {
	a := writeDB(t, "a.db", "100\tduke\tduke!%s\n")
	b := writeDB(t, "b.db", "100\tduke\tphs!duke!%s\n")
	var out, errb strings.Builder
	if code := run([]string{a, b}, &out, &errb); code != 3 {
		t.Errorf("exit %d want 3", code)
	}
	if !strings.Contains(out.String(), "rerouted\tduke") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(errb.String(), "1 rerouted") {
		t.Errorf("summary = %q", errb.String())
	}
}

func TestSummaryOnly(t *testing.T) {
	a := writeDB(t, "a.db", "100\tduke\tduke!%s\n")
	b := writeDB(t, "b.db", "200\tduke\tduke!%s\n")
	var out, errb strings.Builder
	if code := run([]string{"-s", a, b}, &out, &errb); code != 3 {
		t.Errorf("exit %d want 3", code)
	}
	if out.String() != "" {
		t.Errorf("summary mode printed changes: %q", out.String())
	}
	if !strings.Contains(errb.String(), "1 recosted") {
		t.Errorf("summary = %q", errb.String())
	}
}

// TestGoldenPaperDiff pins the exact output on routes computed from the
// golden paper1981 map (one edit adding, removing, rerouting, and
// recosting hosts). The goldens were captured before the diff logic
// moved to internal/whatif/diff; this proves the refactor changed
// nothing.
func TestGoldenPaperDiff(t *testing.T) {
	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	var out, errb strings.Builder
	code := run([]string{"testdata/paper-old.db", "testdata/paper-new.db"}, &out, &errb)
	if code != 3 {
		t.Errorf("exit %d want 3", code)
	}
	if want := read("paper-diff.golden"); out.String() != want {
		t.Errorf("stdout:\n%s\nwant:\n%s", out.String(), want)
	}
	if want := read("paper-diff.stderr"); errb.String() != want {
		t.Errorf("stderr:\n%s\nwant:\n%s", errb.String(), want)
	}
}

func TestUsageAndErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"only-one"}, &out, &errb); code != 2 {
		t.Errorf("exit %d want 2", code)
	}
	a := writeDB(t, "a.db", "100\tduke\tduke!%s\n")
	if code := run([]string{a, "/nonexistent"}, &out, &errb); code != 1 {
		t.Errorf("exit %d want 1", code)
	}
	if code := run([]string{"/nonexistent", a}, &out, &errb); code != 1 {
		t.Errorf("exit %d want 1", code)
	}
}
