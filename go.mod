module pathalias

go 1.24
