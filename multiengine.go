package pathalias

// Multi-source mapping: one shared incremental pipeline serving routes
// from many vantage points. The paper's mailrouter scenario wants the
// route between arbitrary host pairs, not just from one LocalHost; a
// MultiEngine answers it by keeping ONE fragment cache, ONE journaled
// graph, and ONE CSR snapshot, shared by per-vantage mapping machines
// with per-source result caches. Each vantage's output is byte-identical
// to a fresh single-source Run with that LocalHost (the cross-vantage
// equivalence suite in internal/remap holds this), and a source edit
// costs one delta parse plus one warm re-map per resident vantage —
// where N independent Engines would re-scan and re-patch N times.

import (
	"fmt"
	"strings"
	"sync"

	"pathalias/internal/core"
	"pathalias/internal/remap"
)

// MultiEngine recomputes routes incrementally from any number of
// vantage hosts over one shared map. Create one with NewMultiEngine,
// feed it complete input sets with Update, and read any vantage's
// routes with ResultFrom (or query pairs with ResolvePairs).
//
// A MultiEngine is safe for concurrent use: ResultFrom, ResolvePairs,
// Vantages, and Stats may run from any number of goroutines; Update
// excludes them while the shared state moves. Results are immutable
// snapshots and stable indefinitely: the public conversion copies the
// engine's recycled entry buffers, so a Result may be retained across
// any number of updates.
type MultiEngine struct {
	opts Options
	eng  *remap.Multi

	// converted caches the public view of each vantage's latest engine
	// result, keyed by the engine Result's identity (a recompute always
	// allocates a fresh one), so cache-served queries — ResolvePairs
	// batches above all — skip the O(routes) copy and the re-sorted
	// lookup index.
	convMu    sync.Mutex
	converted map[string]convCache
}

type convCache struct {
	src *remap.Result
	res *Result
}

// NewMultiEngine returns a multi-vantage engine. Unlike Run and
// NewEngine, opts.LocalHost is optional: when set it names a default
// vantage that is computed eagerly on every Update and never evicted;
// other vantages spin up lazily on first query and are evicted
// least-recently-used beyond opts.MaxVantages.
func NewMultiEngine(opts Options) (*MultiEngine, error) {
	eng, err := remap.NewMulti(remapOptions(opts))
	if err != nil {
		return nil, err
	}
	return &MultiEngine{opts: opts, eng: eng, converted: make(map[string]convCache)}, nil
}

// Update brings the engine to the given input set — always the complete
// set, not a delta — and recomputes every resident vantage. On error the
// previous results keep serving. A vantage whose host vanished from the
// map does not fail the update; its error surfaces on ResultFrom.
func (e *MultiEngine) Update(inputs ...Input) error {
	rins := make([]remap.Input, len(inputs))
	for i, in := range inputs {
		rins[i] = remap.Input{Name: in.Name, Src: in.Text}
	}
	return e.eng.Update(rins)
}

// UpdateFiles loads the named files (memory-mapped where the platform
// allows — the engine holds each mapping until that file's content is
// superseded) and updates from them. Watched files should be updated by
// rename, not rewritten in place (see remap.Input).
func (e *MultiEngine) UpdateFiles(paths ...string) error {
	ins, err := core.ReadInputsMmap(paths)
	if err != nil {
		return err
	}
	rins := make([]remap.Input, len(ins))
	for i, in := range ins {
		rins[i] = remap.Input{Name: in.Name, Src: in.Src, Release: in.Release}
	}
	// Update owns the inputs from here, success or error: it may have
	// cached some of them even when it fails, so releasing here would
	// leave cached fragments dangling.
	return e.eng.Update(rins)
}

// ResultFrom returns the routes originating at the given vantage host,
// computing (or catching up) that vantage over the shared map if it is
// not already resident. The result is byte-identical to a fresh Run
// with LocalHost = from over the current inputs.
func (e *MultiEngine) ResultFrom(from string) (*Result, error) {
	r, err := e.eng.ResultFor(from)
	if err != nil {
		return nil, err
	}
	key := from
	if e.opts.IgnoreCase {
		key = strings.ToLower(from)
	}
	e.convMu.Lock()
	defer e.convMu.Unlock()
	if c, ok := e.converted[key]; ok && c.src == r {
		return c.res, nil
	}
	opts := e.opts
	opts.LocalHost = from
	res := convertResult(opts, r)
	if len(e.converted) >= convCacheMax {
		// Drop conversions of vantages the engine has evicted (cache
		// keys are folded exactly like engine vantage names).
		live := make(map[string]bool)
		for _, v := range e.eng.Vantages() {
			live[v] = true
		}
		for k := range e.converted {
			if !live[k] {
				delete(e.converted, k)
			}
		}
	}
	e.converted[key] = convCache{src: r, res: res}
	return res, nil
}

// convCacheMax bounds the converted-result cache; reaching it prunes
// entries for evicted vantages (the engine's own vantage cap keeps the
// live set below this in any sane configuration).
const convCacheMax = 512

// Result returns the default vantage's routes (opts.LocalHost). It
// errors when the engine was built without a LocalHost.
func (e *MultiEngine) Result() (*Result, error) {
	if e.opts.LocalHost == "" {
		return nil, fmt.Errorf("pathalias: MultiEngine has no default vantage (Options.LocalHost empty)")
	}
	return e.ResultFrom(e.opts.LocalHost)
}

// Pair names one route query between two hosts.
type Pair struct {
	From string // vantage host the route originates at
	To   string // destination host
}

// PairRoute is one pair's outcome from ResolvePairs.
type PairRoute struct {
	Pair
	Route Route // valid when Err is nil
	Err   error
}

// ResolvePairs computes routes between arbitrary host pairs — the
// mailrouter question asked in bulk. Pairs are grouped by vantage so
// each vantage is computed (or served from cache) once regardless of
// how many destinations it is asked for; destinations are answered with
// the vantage Result's indexed exact-match Lookup. An unknown vantage
// or destination carries its error in the corresponding PairRoute
// rather than failing the batch. Results are in input order.
func (e *MultiEngine) ResolvePairs(pairs []Pair) []PairRoute {
	out := make([]PairRoute, len(pairs))
	type group struct {
		res *Result
		err error
	}
	byFrom := make(map[string]*group)
	for i, p := range pairs {
		out[i].Pair = p
		g := byFrom[p.From]
		if g == nil {
			g = &group{}
			g.res, g.err = e.ResultFrom(p.From)
			byFrom[p.From] = g
		}
		if g.err != nil {
			out[i].Err = g.err
			continue
		}
		rt, ok := g.res.Lookup(p.To)
		if !ok {
			out[i].Err = fmt.Errorf("pathalias: no route from %q to %q", p.From, p.To)
			continue
		}
		out[i].Route = rt
	}
	return out
}

// Vantages returns the resident vantage host names, sorted.
func (e *MultiEngine) Vantages() []string { return e.eng.Vantages() }

// Stats returns engine activity counters. Incremental and FullRemaps
// count per-vantage mapping runs.
func (e *MultiEngine) Stats() EngineStats { return EngineStats(e.eng.Stats()) }

// Close releases cached sources (memory mappings from UpdateFiles).
func (e *MultiEngine) Close() { e.eng.Close() }
