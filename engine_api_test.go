package pathalias

import (
	"strings"
	"testing"
)

// TestEngineMatchesRun holds the public Engine to its contract: after
// any Update, the result is identical to a fresh Run over the same
// inputs.
func TestEngineMatchesRun(t *testing.T) {
	const src = `unc	duke(HOURLY), phs(HOURLY*4)
duke	unc(DEMAND), research(DAILY/2), phs(DEMAND)
phs	unc(HOURLY*4), duke(HOURLY)
research	duke(DEMAND), ucbvax(DEMAND)
ucbvax	research(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
`
	opts := Options{LocalHost: "unc", PrintCosts: true}
	eng, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	check := func(label, text string) {
		t.Helper()
		got, err := eng.Update(Input{Name: "m.map", Text: text})
		if err != nil {
			t.Fatalf("%s: Update: %v", label, err)
		}
		want, err := RunString(opts, text)
		if err != nil {
			t.Fatalf("%s: Run: %v", label, err)
		}
		var gw, ww strings.Builder
		if err := got.WriteRoutes(&gw); err != nil {
			t.Fatal(err)
		}
		if err := want.WriteRoutes(&ww); err != nil {
			t.Fatal(err)
		}
		if gw.String() != ww.String() {
			t.Fatalf("%s: engine and Run diverge\nengine:\n%s\nrun:\n%s", label, gw.String(), ww.String())
		}
		if len(got.Unreachable) != len(want.Unreachable) {
			t.Fatalf("%s: unreachable %v vs %v", label, got.Unreachable, want.Unreachable)
		}
	}

	check("initial", src)
	check("cost edit", strings.Replace(src, "duke(HOURLY)", "duke(WEEKLY)", 1))
	check("link added", src+"ucbvax\tnewhost(DEMAND)\n")
	check("back to start", src)

	if s := eng.Stats(); s.Incremental == 0 {
		t.Errorf("expected incremental updates, stats %+v", s)
	}
	// Result() returns the latest snapshot; Lookup works on it.
	res := eng.Result()
	if res == nil {
		t.Fatal("Result() nil after updates")
	}
	if r, ok := res.Lookup("duke"); !ok || !strings.Contains(r.Format, "%s") {
		t.Fatalf("Lookup(duke) = %+v, %v", r, ok)
	}
	// The engine result feeds a Database exactly like a Run result.
	db := res.NewDatabase()
	addr, err := db.Resolve("ucbvax", "user")
	if err != nil || addr == "" {
		t.Fatalf("Resolve via engine database: %q, %v", addr, err)
	}
}

// TestEngineErrorKeepsServing: a syntax error leaves the previous
// result intact.
func TestEngineErrorKeepsServing(t *testing.T) {
	eng, err := NewEngine(Options{LocalHost: "a"})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Update(Input{Name: "m", Text: "a\tb(DEMAND)\n"}); err != nil {
		t.Fatal(err)
	}
	before := eng.Result()
	if _, err := eng.Update(Input{Name: "m", Text: "a\tb(((\n"}); err == nil {
		t.Fatal("expected parse error")
	}
	after := eng.Result()
	if after == nil || len(after.Routes) != len(before.Routes) {
		t.Fatalf("error update disturbed the serving result: %+v", after)
	}
}
