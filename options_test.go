package pathalias

import (
	"strings"
	"testing"
)

func TestIgnoreCase(t *testing.T) {
	// Mixed-case spellings of one host merge; cost symbols stay intact.
	src := "Alpha Beta(HOURLY)\nBETA gamma(HOURLY)\n"
	res, err := RunString(Options{LocalHost: "alpha", IgnoreCase: true}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Hosts != 3 {
		t.Errorf("hosts = %d want 3 (alpha, beta, gamma)", res.Stats.Hosts)
	}
	rt, ok := res.Lookup("gamma")
	if !ok {
		t.Fatal("no route to gamma")
	}
	if rt.Format != "beta!gamma!%s" || rt.Cost != 1000 {
		t.Errorf("gamma = %+v", rt)
	}
	// Without folding, Beta and BETA are distinct and gamma needs a back
	// link through the second one.
	res2, err := RunString(Options{LocalHost: "Alpha"}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Hosts != 4 {
		t.Errorf("case-sensitive hosts = %d want 4", res2.Stats.Hosts)
	}
}

func TestIgnoreCaseCostSymbolsSurvive(t *testing.T) {
	// The -i flag must not break the symbolic cost vocabulary — this is
	// the regression the naive lowercase-the-input approach causes.
	src := "A B(HOURLY*4)\n"
	res, err := RunString(Options{LocalHost: "a", IgnoreCase: true}, src)
	if err != nil {
		t.Fatalf("IgnoreCase broke cost symbols: %v", err)
	}
	rt, _ := res.Lookup("b")
	if rt.Cost != 2000 {
		t.Errorf("cost = %d want 2000", rt.Cost)
	}
}

func TestFirstHopCost(t *testing.T) {
	src := "a b(10)\nb c(20)\nc d(30)\n"
	res, err := RunString(Options{LocalHost: "a", FirstHopCost: true}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Every route out of a starts with the a->b link: first-hop cost 10.
	for _, host := range []string{"b", "c", "d"} {
		rt, _ := res.Lookup(host)
		if rt.Cost != 10 {
			t.Errorf("first-hop cost(%s) = %d want 10", host, rt.Cost)
		}
	}
	// The root itself reports zero.
	rt, _ := res.Lookup("a")
	if rt.Cost != 0 {
		t.Errorf("first-hop cost(a) = %d want 0", rt.Cost)
	}
}

func TestFirstHopCostDifferentBranches(t *testing.T) {
	src := "a b(10), x(99)\nb c(20)\nx y(1)\n"
	res, err := RunString(Options{LocalHost: "a", FirstHopCost: true}, src)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]int64{"b": 10, "c": 10, "x": 99, "y": 99}
	for host, want := range cases {
		rt, _ := res.Lookup(host)
		if rt.Cost != want {
			t.Errorf("first-hop cost(%s) = %d want %d", host, rt.Cost, want)
		}
	}
}

func TestWarningsSurfacedInResult(t *testing.T) {
	res, err := RunString(Options{LocalHost: "a"}, "a a(10)\na b(10)\ndead {x!y}\n")
	if err != nil {
		t.Fatal(err)
	}
	var selfLink, noLink bool
	for _, w := range res.Warnings {
		if strings.Contains(w, "self link") {
			selfLink = true
		}
		if strings.Contains(w, "no such link") {
			noLink = true
		}
	}
	if !selfLink || !noLink {
		t.Errorf("warnings = %v", res.Warnings)
	}
}
