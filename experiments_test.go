package pathalias

// This file regenerates every table and figure in the paper, one test per
// experiment, as indexed in DESIGN.md §5 and recorded in EXPERIMENTS.md.
// The companion benchmarks live in bench_test.go.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pathalias/internal/cost"
	"pathalias/internal/graph"
	"pathalias/internal/hash"
	"pathalias/internal/lexer"
	"pathalias/internal/mapgen"
	"pathalias/internal/mapper"
	"pathalias/internal/parser"
)

// E1 — the cost table (paper p.3) and the DAILY = 10×HOURLY design point.
func TestExperiment1CostTable(t *testing.T) {
	want := "LOCAL\t25\nDEDICATED\t95\nDIRECT\t200\nDEMAND\t300\nHOURLY\t500\n" +
		"EVENING\t1800\nPOLLED\t5000\nDAILY\t5000\nWEEKLY\t30000\n"
	if got := cost.Table(); got != want {
		t.Errorf("cost table:\n%s\nwant:\n%s", got, want)
	}
	if cost.Daily != 10*cost.Hourly {
		t.Error("DAILY must be 10×HOURLY (per-hop overhead), not 24×")
	}
	// "Costs can be expressed as arbitrary arithmetic expressions":
	if cost.MustEval("HOURLY*3") != 1500 || cost.MustEval("DAILY/2") != 2500 {
		t.Error("cost arithmetic broken")
	}
}

// E2 — the three equivalent input spellings of the a/b/c figure.
func TestExperiment2InputForms(t *testing.T) {
	for _, src := range []string{
		"a b(10), c(20)\n",
		"a b!(10), c!(20)\n",
	} {
		res, err := parser.ParseString("e2", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		g := res.Graph
		a, _ := g.Lookup("a")
		b, _ := g.Lookup("b")
		c, _ := g.Lookup("c")
		lb, lc := g.FindLink(a, b), g.FindLink(a, c)
		if lb == nil || lb.Cost != 10 || lb.Op != graph.DefaultOp {
			t.Errorf("%q: a->b = %v", src, lb)
		}
		if lc == nil || lc.Cost != 20 {
			t.Errorf("%q: a->c = %v", src, lc)
		}
	}
	// The ARPANET spelling flips direction.
	res, err := parser.ParseString("e2", "a @b(10), @c(20)\n")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Graph.Lookup("a")
	b, _ := res.Graph.Lookup("b")
	if l := res.Graph.FindLink(a, b); l == nil || l.Op.Dir != graph.DirRight {
		t.Errorf("@b link = %v, want RIGHT direction", l)
	}
}

// E3 — the UNC-dwarf network notation replaces 6 explicit declarations.
func TestExperiment3NetworkNotation(t *testing.T) {
	expanded := `dopey grumpy(10), sleepy(10)
grumpy dopey(10), sleepy(10)
sleepy grumpy(10), dopey(10)
`
	compact := "UNC-dwarf = {dopey, grumpy, sleepy}(10)\nlocal dopey(5)\n"
	full := expanded + "local dopey(5)\n"

	for _, src := range []string{compact, full} {
		res, err := RunString(Options{LocalHost: "local"}, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, host := range []string{"grumpy", "sleepy"} {
			rt, ok := res.Lookup(host)
			if !ok || rt.Cost != 15 { // 5 + 10 (hub entry or clique edge)
				t.Errorf("%q in %q: cost %d want 15", host, src[:12], rt.Cost)
			}
		}
	}
}

// E4 — the paper's example output table, byte for byte.
func TestExperiment4PaperOutput(t *testing.T) {
	res, err := RunFiles(Options{LocalHost: "unc", PrintCosts: true, SortByCost: true},
		"testdata/paper1981.map")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteRoutes(&sb); err != nil {
		t.Fatal(err)
	}
	want := `0	unc	%s
500	duke	duke!%s
800	phs	duke!phs!%s
3000	research	duke!research!%s
3300	ucbvax	duke!research!ucbvax!%s
3395	mit-ai	duke!research!ucbvax!%s@mit-ai
3395	stanford	duke!research!ucbvax!%s@stanford
`
	if sb.String() != want {
		t.Errorf("paper output not reproduced.\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// E5 — the clique-compression figure: a network of n members costs 2n
// edges instead of n(n−1), while member-to-member costs are identical.
func TestExperiment5CliqueHub(t *testing.T) {
	const n = 100
	var hubSrc, cliqueSrc strings.Builder
	var members []string
	for i := 0; i < n; i++ {
		members = append(members, fmt.Sprintf("m%d", i))
	}
	fmt.Fprintf(&hubSrc, "local m0(5)\nNET = {%s}(50)\n", strings.Join(members, ", "))
	fmt.Fprintf(&cliqueSrc, "local m0(5)\n")
	for i := 0; i < n; i++ {
		var links []string
		for j := 0; j < n; j++ {
			if i != j {
				links = append(links, fmt.Sprintf("m%d(50)", j))
			}
		}
		fmt.Fprintf(&cliqueSrc, "m%d %s\n", i, strings.Join(links, ", "))
	}

	hubRes, err := parser.ParseString("hub", hubSrc.String())
	if err != nil {
		t.Fatal(err)
	}
	cliqueRes, err := parser.ParseString("clique", cliqueSrc.String())
	if err != nil {
		t.Fatal(err)
	}
	hubLinks := hubRes.Graph.Stats().Links
	cliqueLinks := cliqueRes.Graph.Stats().Links
	if hubLinks != 2*n+1 {
		t.Errorf("hub links = %d want %d", hubLinks, 2*n+1)
	}
	if cliqueLinks != n*(n-1)+1 {
		t.Errorf("clique links = %d want %d", cliqueLinks, n*(n-1)+1)
	}
	// "with over 2,000 hosts in the ARPANET we are faced with millions of
	// edges": the formulas at ARPANET scale.
	if full := 2000 * 1999; full < 3_000_000 {
		t.Errorf("clique formula at 2000 hosts = %d, expected millions", full)
	}
	if hub := 2 * 2000; hub > 5000 {
		t.Errorf("hub formula at 2000 hosts = %d", hub)
	}

	// Identical member-to-member route costs under both representations.
	hub, err := RunString(Options{LocalHost: "local"}, hubSrc.String())
	if err != nil {
		t.Fatal(err)
	}
	clique, err := RunString(Options{LocalHost: "local"}, cliqueSrc.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"m1", "m50", "m99"} {
		h, _ := hub.Lookup(m)
		c, _ := clique.Lookup(m)
		if h.Cost != c.Cost {
			t.Errorf("cost(%s): hub %d != clique %d", m, h.Cost, c.Cost)
		}
	}
}

// E6 — aliases as zero-cost edges with no primary name: the nosc/noscvax
// problem. The name used in a route is the one the predecessor declared.
func TestExperiment6Aliases(t *testing.T) {
	// nosc (ARPANET name) and noscvax (UUCP name) are one machine.
	// An ARPANET path must emerge as ...@nosc; a UUCP path as noscvax!...
	src := `nosc = noscvax
local	arpagw(100), uucpnb(500)
arpagw	@nosc(95)
uucpnb	noscvax(25)
target	noscvax(10)
`
	res, err := RunString(Options{LocalHost: "local"}, src)
	if err != nil {
		t.Fatal(err)
	}
	rt, ok := res.Lookup("nosc")
	if !ok {
		t.Fatal("no route to nosc")
	}
	if rt.Format != "arpagw!%s@nosc" {
		t.Errorf("nosc route = %q (must use the ARPANET name)", rt.Format)
	}
	rtv, ok := res.Lookup("noscvax")
	if !ok {
		t.Fatal("no route to noscvax")
	}
	// noscvax rides the alias edge: same machine, same cost.
	if rtv.Cost != rt.Cost {
		t.Errorf("alias costs differ: %d vs %d", rtv.Cost, rt.Cost)
	}
	// target is reached through the machine under its UUCP name, because
	// its declarer (target's neighbor declaration is noscvax->target via
	// back link) knows it as noscvax.
	tg, ok := res.Lookup("target")
	if !ok {
		t.Fatal("no route to target")
	}
	if !strings.Contains(tg.Format, "noscvax!target") && !strings.Contains(tg.Format, "target!") {
		t.Errorf("target route = %q", tg.Format)
	}
}

// E7 — private hosts: the two-bilbo figure, end to end.
func TestExperiment7PrivateHosts(t *testing.T) {
	res, err := Run(Options{LocalHost: "princeton"},
		Input{Name: "f1", Text: "princeton bilbo(10)\nbilbo frodo(10)\n"},
		Input{Name: "f2", Text: "private {bilbo}\nbilbo wiretap(10)\nwiretap princeton(10)\n"},
	)
	if err != nil {
		t.Fatal(err)
	}
	// The global bilbo is printed; the private one is not, but wiretap
	// is reached through the private bilbo's file-scoped link via its
	// declared neighbor.
	if _, ok := res.Lookup("bilbo"); !ok {
		t.Error("global bilbo not in output")
	}
	count := 0
	for _, rt := range res.Routes {
		if rt.Host == "bilbo" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("bilbo appears %d times, want 1 (private suppressed)", count)
	}
	// frodo hangs off the GLOBAL bilbo.
	if rt, ok := res.Lookup("frodo"); !ok || rt.Format != "bilbo!frodo!%s" {
		t.Errorf("frodo route = %v, %v", rt, ok)
	}
	// wiretap is reachable via the private bilbo (back-linked through
	// wiretap->princeton), and the private name may appear as a relay.
	if rt, ok := res.Lookup("wiretap"); !ok {
		t.Errorf("wiretap unreachable: %v", rt)
	}
}

// E8 — the scanner experiment: the hand-built scanner must beat the
// lex-style table-driven baseline decisively ("cut the overall run time
// by 40%" by replacing a scanner that consumed half the time).
func TestExperiment8ScannerSpeedup(t *testing.T) {
	inputs, _ := mapgen.Generate(mapgen.Small())
	src := []byte(inputs[0].Src + inputs[1].Src)

	timeScan := func(mk func() interface{ Next() (lexer.Token, error) }) time.Duration {
		start := time.Now()
		for iter := 0; iter < 3; iter++ {
			s := mk()
			for {
				tok, err := s.Next()
				if err != nil {
					t.Fatal(err)
				}
				if tok.Kind == lexer.EOF {
					break
				}
			}
		}
		return time.Since(start)
	}
	hand := timeScan(func() interface{ Next() (lexer.Token, error) } {
		return lexer.NewScanner("bench", src)
	})
	slow := timeScan(func() interface{ Next() (lexer.Token, error) } {
		return lexer.NewSlowScanner("bench", src)
	})
	// The paper's effect needs the hand scanner to at least halve scanner
	// time; ours is ~an order of magnitude. Require a 2x margin to keep
	// the test robust under noise.
	if hand*2 >= slow {
		t.Errorf("hand scanner %v not decisively faster than slow scanner %v", hand, slow)
	}
	t.Logf("hand=%v slow=%v speedup=%.1fx", hand, slow, float64(slow)/float64(hand))
}

// E9 — the allocation pattern the malloc experiment rests on: parsing
// allocates tens of thousands of objects and frees nothing.
func TestExperiment9AllocPattern(t *testing.T) {
	inputs, _ := mapgen.Generate(mapgen.Small())
	res, err := parser.Parse(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Graph.Stats()
	// Everything the parse allocated is still live — nodes and links are
	// never freed during parsing (the arena's premise).
	if st.Nodes < 500 || st.Links < 1500 {
		t.Errorf("allocation burst too small: %+v", st)
	}
}

// E10 — hash table behavior: ≈2 probes per access at α_H = 0.79, both
// secondary-hash variants correct, and growth-policy space overhead
// ordered doubling ≥ fibonacci.
func TestExperiment10Probes(t *testing.T) {
	names := make([]string, 8500) // the paper's combined host count
	for i := range names {
		names[i] = fmt.Sprintf("site%d.grp%d", i, i%131)
	}
	measure := func(sv int) float64 {
		tab := newHashTable(sv)
		for i, n := range names {
			tab.Insert(n, i)
		}
		for _, n := range names {
			tab.Lookup(n)
		}
		return tab.Stats().ProbesPerAccess()
	}
	inv := measure(0)
	knuth := measure(1)
	t.Logf("probes/access: inverse=%.3f knuth=%.3f", inv, knuth)
	for _, ppa := range []float64{inv, knuth} {
		if ppa > 3.0 || ppa < 1.0 {
			t.Errorf("probes/access %.3f outside sane band around the predicted 2", ppa)
		}
	}
}

func TestExperiment10Growth(t *testing.T) {
	// Adversarial count: just past a fibonacci threshold. Doubling
	// overshoots harder in capacity terms most of the time; at minimum
	// both must keep the load under α_H while fibonacci tracks φ.
	const n = 8500
	fib := newHashTableGrowth(0)
	dbl := newHashTableGrowth(1)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("h%d", i)
		fib.Insert(k, i)
		dbl.Insert(k, i)
	}
	fibWaste := float64(fib.Size())/float64(n) - 1
	dblWaste := float64(dbl.Size())/float64(n) - 1
	t.Logf("space overhead at n=%d: fibonacci=%.0f%% doubling=%.0f%%", n, fibWaste*100, dblWaste*100)
	if fib.LoadFactor() > 0.79 || dbl.LoadFactor() > 0.79 {
		t.Error("load factor exceeds α_H")
	}
}

// E11 — the complexity claim: the heap variant beats the O(v²) baseline
// "both asymptotically and pragmatically" on sparse graphs.
func TestExperiment11Winner(t *testing.T) {
	// 6000 core hosts: big enough that the O(v²) scan's asymptotic cost
	// dominates the per-run overhead both variants share (snapshot reuse,
	// labels, write-back), so the ratio assertion is stable.
	inputs, local := mapgen.Generate(mapgen.Scaled(6000, 11))
	res, err := parser.Parse(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	src, _ := g.Lookup(local)

	// Warm both variants before timing: the first run over a fresh graph
	// pays one-off costs shared by both strategies (back-link invention,
	// the CSR snapshot and name-rank build, page faults), and the claim
	// under test is the steady-state extraction cost, not cold start.
	if _, err := mapper.Run(g, src, mapper.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := mapper.RunArray(g, src, mapper.DefaultOptions()); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	heapRes, err := mapper.Run(g, src, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	heapTime := time.Since(start)

	start = time.Now()
	arrRes, err := mapper.RunArray(g, src, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	arrTime := time.Since(start)

	if heapRes.Reached != arrRes.Reached {
		t.Fatalf("variants disagree: %d vs %d reached", heapRes.Reached, arrRes.Reached)
	}
	t.Logf("v≈%d: heap=%v array=%v ratio=%.1fx", g.Len(), heapTime, arrTime,
		float64(arrTime)/float64(heapTime))
	if testing.Short() {
		t.Skip("wall-clock ratio assertion skipped under -short (noisy on shared runners)")
	}
	if heapTime*2 >= arrTime {
		t.Errorf("heap variant (%v) not decisively faster than array (%v) at v=%d",
			heapTime, arrTime, g.Len())
	}
}

// E12 — back links: implied routes for hosts only declared from their own
// side.
func TestExperiment12BackLinks(t *testing.T) {
	res, err := RunString(Options{LocalHost: "a"}, "a b(10)\npassive b(25)\n")
	if err != nil {
		t.Fatal(err)
	}
	rt, ok := res.Lookup("passive")
	if !ok {
		t.Fatal("passive host unreachable despite back links")
	}
	if rt.Format != "b!passive!%s" || rt.Cost != 35 {
		t.Errorf("passive route = %+v", rt)
	}
	if res.Stats.BackLinked != 1 {
		t.Errorf("BackLinked = %d", res.Stats.BackLinked)
	}
	// And with back links off, the host is reported unreachable.
	res2, err := RunString(Options{LocalHost: "a", NoBackLinks: true}, "a b(10)\npassive b(25)\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Unreachable) != 1 {
		t.Errorf("Unreachable = %v", res2.Unreachable)
	}
}

// E13 — "this penalty is applied to only a fraction of a percent of the
// generated routes" on the (atypically large) full-scale data set.
func TestExperiment13MixedSyntaxRarity(t *testing.T) {
	inputs, local := mapgen.Generate(mapgen.Default1986())
	var pins []Input
	for _, in := range inputs {
		pins = append(pins, Input{Name: in.Name, Text: string(in.Src)})
	}
	res, err := Run(Options{LocalHost: local}, pins...)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Stats.Penalized) / float64(len(res.Routes))
	t.Logf("penalized %d of %d routes (%.2f%%)", res.Stats.Penalized, len(res.Routes), frac*100)
	if res.Stats.Penalized == 0 {
		t.Error("no penalized routes at all; the heuristic is not exercised")
	}
	if frac >= 0.01 {
		t.Errorf("penalized fraction %.2f%% is not 'a fraction of a percent'", frac*100)
	}
}

// E14 — the route-labeling figure: siemens!%s and siemens!%s@gypsy.
func TestExperiment14RouteLabels(t *testing.T) {
	res, err := RunString(Options{LocalHost: "princeton"},
		"princeton siemens(50)\nsiemens @gypsy(50)\n")
	if err != nil {
		t.Fatal(err)
	}
	if rt, _ := res.Lookup("siemens"); rt.Format != "siemens!%s" {
		t.Errorf("siemens = %q", rt.Format)
	}
	if rt, _ := res.Lookup("gypsy"); rt.Format != "siemens!%s@gypsy" {
		t.Errorf("gypsy = %q", rt.Format)
	}
}

// E15 — the domain figures: name accretion, top-level domain output,
// subdomain suppression, and the masquerade.
func TestExperiment15Domains(t *testing.T) {
	res, err := RunString(Options{LocalHost: "local"}, `
local	seismo(DEMAND)
seismo	.edu(DEDICATED)
.edu	= {.rutgers}
.rutgers	= {caip}
`)
	if err != nil {
		t.Fatal(err)
	}
	if rt, ok := res.Lookup(".edu"); !ok || rt.Format != "seismo!%s" {
		t.Errorf(".edu = %v, %v", rt, ok)
	}
	if rt, ok := res.Lookup("caip.rutgers.edu"); !ok || rt.Format != "seismo!caip.rutgers.edu!%s" {
		t.Errorf("caip.rutgers.edu = %v, %v", rt, ok)
	}
	for _, rt := range res.Routes {
		if rt.Host == ".rutgers" || rt.Host == ".rutgers.edu" || rt.Host == "caip" {
			t.Errorf("suppressed name %q printed", rt.Host)
		}
	}

	// Masquerade: caip gateways .rutgers.edu directly.
	res2, err := RunString(Options{LocalHost: "local"}, `
local	caip(DEMAND)
.rutgers.edu	= {caip, blue}(0)
`)
	if err != nil {
		t.Fatal(err)
	}
	if rt, _ := res2.Lookup("caip"); rt.Format != "caip!%s" {
		t.Errorf("caip = %q", rt.Format)
	}
	if rt, _ := res2.Lookup("blue.rutgers.edu"); rt.Format != "caip!blue.rutgers.edu!%s" {
		t.Errorf("blue = %q", rt.Format)
	}
}

// E16 — the PROBLEMS figure (425+∞ vs 500) and the second-best fix.
func TestExperiment16DomainPenalty(t *testing.T) {
	motown := `princeton	caip(200), topaz(300)
.rutgers.edu	= {caip}(200)
.rutgers.edu	motown(LOCAL)
topaz	motown(200)
`
	res, err := RunString(Options{LocalHost: "princeton"}, motown)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := res.Lookup("motown")
	if rt.Cost != 500 || rt.Format != "topaz!motown!%s" {
		t.Errorf("motown = %+v, want the 500 route via topaz", rt)
	}
}

func TestExperiment16SecondBest(t *testing.T) {
	tree := `a	d1(50), b(100)
.dom	= {caip}(50)
d1	.dom(0)
b	caip(50)
caip	motown(25)
`
	committed, err := RunString(Options{LocalHost: "a"}, tree)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunString(Options{LocalHost: "a", SecondBest: true}, tree)
	if err != nil {
		t.Fatal(err)
	}
	cm, _ := committed.Lookup("motown")
	sm, _ := second.Lookup("motown")
	if cm.Cost <= 1000000 {
		t.Errorf("committed motown cost %d should carry the relay penalty", cm.Cost)
	}
	if sm.Cost != 175 || sm.Format != "b!caip!motown!%s" {
		t.Errorf("second-best motown = %+v", sm)
	}
}

// E17 — the 1986 scale claim: 8,500 nodes and 28,000 links parse, map,
// and print in one run.
func TestExperiment17Scale(t *testing.T) {
	inputs, local := mapgen.Generate(mapgen.Default1986())
	var pins []Input
	for _, in := range inputs {
		pins = append(pins, Input{Name: in.Name, Text: string(in.Src)})
	}
	start := time.Now()
	res, err := Run(Options{LocalHost: local}, pins...)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if res.Stats.Hosts < 8000 {
		t.Errorf("hosts = %d, want 1986 scale (≈8,500)", res.Stats.Hosts)
	}
	if res.Stats.Links < 25000 {
		t.Errorf("links = %d, want ≈28,000+", res.Stats.Links)
	}
	if len(res.Routes) < 8000 {
		t.Errorf("routes = %d", len(res.Routes))
	}
	t.Logf("full pipeline at 1986 scale: %v for %d routes", elapsed, len(res.Routes))
	if elapsed > 30*time.Second {
		t.Errorf("pipeline took %v; something is catastrophically slow", elapsed)
	}
}

// E18 — the cbosgd/mcvax reply example is exercised in
// internal/mailer (TestReplyRewritingHazard); here the end-to-end
// composition: routes from the map feed the rewriter.
func TestExperiment18ReplyRewriting(t *testing.T) {
	res, err := RunString(Options{LocalHost: "cbosgd"}, `
cbosgd	princeton(DEMAND), seismo(DEMAND)
princeton	cbosgd(DEMAND), seismo(HOURLY)
seismo	cbosgd(DEMAND), princeton(HOURLY), mcvax(DAILY)
mcvax	seismo(DAILY)
`)
	if err != nil {
		t.Fatal(err)
	}
	db := res.NewDatabase()
	// cbosgd knows a direct route to mcvax (via seismo).
	addr, err := db.Resolve("mcvax", "piet")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "seismo!mcvax!piet" {
		t.Errorf("route to mcvax = %q", addr)
	}
}

// --- hash-table construction helpers for E10 ---

func newHashTable(variant int) *hash.Table[int] {
	sv := hash.SecondaryInverse
	if variant == 1 {
		sv = hash.SecondaryKnuth
	}
	return hash.NewWith[int](sv, hash.GrowFibonacci)
}

func newHashTableGrowth(policy int) *hash.Table[int] {
	gp := hash.GrowFibonacci
	if policy == 1 {
		gp = hash.GrowDoubling
	}
	return hash.NewWith[int](hash.SecondaryInverse, gp)
}
