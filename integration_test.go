package pathalias

// Integration and robustness tests across the whole pipeline: full-scale
// delivery verification, multi-file semantics, never-panic properties on
// hostile input, and cross-variant consistency.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pathalias/internal/cost"
	"pathalias/internal/lexer"
	"pathalias/internal/mapgen"
	"pathalias/internal/mapper"
	"pathalias/internal/parser"
	"pathalias/internal/printer"
	"pathalias/internal/simnet"
)

// TestEveryRouteDeliversAt1986Scale is the capstone integration property:
// on the full 8,500-host synthetic network, every one of the ~8,700
// routes pathalias prints is executable hop-by-hop by the delivery
// simulator. "Get the mail through, reliably and efficiently."
func TestEveryRouteDeliversAt1986Scale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale delivery verification in -short mode")
	}
	inputs, local := mapgen.Generate(mapgen.Default1986())
	pres, err := parser.Parse(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := pres.Graph.Lookup(local)
	mres, err := mapper.Run(pres.Graph, src, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	entries := printer.Routes(mres, printer.Options{})
	net := simnet.New(pres.Graph)
	failures := 0
	for _, e := range entries {
		if _, err := net.VerifyRoute(local, e.Route, e.Host); err != nil {
			failures++
			if failures <= 3 {
				t.Errorf("undeliverable route: %v", err)
			}
		}
	}
	if failures > 3 {
		t.Errorf("... and %d more undeliverable routes of %d", failures-3, len(entries))
	}
	t.Logf("verified %d routes hop-by-hop (%d failures)", len(entries), failures)
}

// TestScannerNeverPanics feeds arbitrary bytes to both scanners.
func TestScannerNeverPanics(t *testing.T) {
	f := func(src []byte) bool {
		s := lexer.NewScanner("fuzz", src)
		for {
			tok, err := s.Next()
			if err != nil || tok.Kind == lexer.EOF {
				break
			}
		}
		ss := lexer.NewSlowScanner("fuzz", src)
		for {
			tok, err := ss.Next()
			if err != nil || tok.Kind == lexer.EOF {
				break
			}
		}
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics feeds arbitrary bytes to the parser.
func TestParserNeverPanics(t *testing.T) {
	f := func(src []byte) bool {
		res, _ := parser.Parse(parser.Input{Name: "fuzz", Src: string(src)})
		return res != nil // a Result is always returned, error or not
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanicsOnStructuredJunk assembles random token soup that
// is lexically valid but grammatically hostile.
func TestParserNeverPanicsOnStructuredJunk(t *testing.T) {
	frags := []string{
		"a", "b.c", ".dom", "=", "{", "}", ",", "!", "@", "%",
		"(10)", "(HOURLY)", "(BAD", "\n", " ", "private", "dead",
		"adjust", "gateway", "file", "delete", "gatewayed",
	}
	f := func(picks []uint16) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(frags[int(p)%len(frags)])
			sb.WriteByte(' ')
		}
		res, _ := parser.ParseString("junk", sb.String())
		return res != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestEvalNeverPanics feeds arbitrary strings to the cost evaluator.
func TestEvalNeverPanics(t *testing.T) {
	f := func(expr string) bool {
		v, err := cost.Eval(expr)
		if err == nil && (v < 0 || v > cost.Infinity) {
			return false
		}
		_, _ = cost.EvalSigned(expr)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestPipelineNeverPanicsOnRandomMaps runs the full pipeline over random
// structurally-valid maps, checking output invariants.
func TestPipelineNeverPanicsOnRandomMaps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		n := 20 + rng.Intn(60)
		for i := 1; i < n; i++ {
			fmt.Fprintf(&sb, "r%d r%d(%d)\n", rng.Intn(i), i, 25+rng.Intn(5000))
		}
		// Random feature sprinkles.
		fmt.Fprintf(&sb, "NET = {r1, r2, r3}(%d)\n", 25+rng.Intn(100))
		fmt.Fprintf(&sb, ".d%d = {r4, r5}\n", seed)
		fmt.Fprintf(&sb, "r6 = r6-alias\n")
		fmt.Fprintf(&sb, "dead {r%d}\n", rng.Intn(n-1)+1)
		fmt.Fprintf(&sb, "adjust {r%d(+%d)}\n", rng.Intn(n-1)+1, rng.Intn(100))

		res, err := RunString(Options{LocalHost: "r0"}, sb.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, rt := range res.Routes {
			if strings.Count(rt.Format, "%s") != 1 {
				t.Fatalf("seed %d: malformed route %q", seed, rt.Format)
			}
			if rt.Cost < 0 {
				t.Fatalf("seed %d: negative cost %d for %s", seed, rt.Cost, rt.Host)
			}
		}
	}
}

// TestTriangleInequalityWithoutHeuristics: with all penalties off and no
// adjustments, mapped costs satisfy cost(v) ≤ cost(u) + w(u,v) over every
// usable edge — the Dijkstra relaxation invariant. (The heuristics
// intentionally break this; the paper admits the model is "sullied".)
func TestTriangleInequalityWithoutHeuristics(t *testing.T) {
	inputs, local := mapgen.Generate(mapgen.Scaled(800, 3))
	pres, err := parser.Parse(inputs...)
	if err != nil {
		t.Fatal(err)
	}
	g := pres.Graph
	src, _ := g.Lookup(local)
	opts := mapper.Options{BackLinks: true} // all penalties zero
	if _, err := mapper.Run(g, src, opts); err != nil {
		t.Fatal(err)
	}
	for _, u := range g.Nodes() {
		if u.M.State != 2 { // graph.Mapped
			continue
		}
		for l := u.FirstLink(); l != nil; l = l.Next {
			if !l.Usable() || l.To.M.State != 2 {
				continue
			}
			if l.To.M.Cost > u.M.Cost.Add(l.Cost) {
				t.Fatalf("triangle violated: cost(%s)=%v > cost(%s)=%v + w=%v",
					l.To.Name, l.To.M.Cost, u.Name, u.M.Cost, l.Cost)
			}
		}
	}
}

// TestMultiFileSemanticsCombined: private scoping, duplicate folding, and
// dead links interact correctly across three files.
func TestMultiFileSemanticsCombined(t *testing.T) {
	res, err := Run(Options{LocalHost: "origin"},
		Input{Name: "site-a", Text: `origin shared(100), bilbo(10)
bilbo deep(10)
`},
		Input{Name: "site-b", Text: `private {bilbo}
bilbo other(10)
other origin(10)
origin shared(50)
`},
		Input{Name: "site-c", Text: `shared tail(25)
dead {origin!shared}
`},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate origin->shared folded to the cheaper 50, then marked dead
	// by site-c, so shared is reached at penalty cost.
	rt, ok := res.Lookup("shared")
	if !ok {
		t.Fatal("no route to shared")
	}
	if rt.Cost < 50+int64(mapper.DefaultDeadPenalty) {
		t.Errorf("shared cost %d does not reflect dead link penalty", rt.Cost)
	}
	// The global bilbo chain still works.
	if rt, ok := res.Lookup("deep"); !ok || rt.Format != "bilbo!deep!%s" {
		t.Errorf("deep = %+v, %v", rt, ok)
	}
	// The private bilbo's neighbor is reachable (via back links through
	// other->origin), and "bilbo" appears exactly once in output.
	count := 0
	for _, r := range res.Routes {
		if r.Host == "bilbo" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("bilbo printed %d times", count)
	}
}

// TestSecondBestNeverWorse: enabling second-best can only improve (or
// keep) every host's cost.
func TestSecondBestNeverWorse(t *testing.T) {
	inputs, local := mapgen.Generate(mapgen.Scaled(600, 9))
	var pins []Input
	for _, in := range inputs {
		pins = append(pins, Input{Name: in.Name, Text: string(in.Src)})
	}
	plain, err := Run(Options{LocalHost: local}, pins...)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(Options{LocalHost: local, SecondBest: true}, pins...)
	if err != nil {
		t.Fatal(err)
	}
	plainCosts := map[string]int64{}
	for _, rt := range plain.Routes {
		plainCosts[rt.Host] = rt.Cost
	}
	improved := 0
	for _, rt := range second.Routes {
		pc, ok := plainCosts[rt.Host]
		if !ok {
			continue
		}
		if rt.Cost > pc {
			t.Errorf("second-best made %s worse: %d > %d", rt.Host, rt.Cost, pc)
		}
		if rt.Cost < pc {
			improved++
		}
	}
	t.Logf("second-best improved %d of %d routes", improved, len(second.Routes))
}

// TestRunIsDeterministic: byte-identical output across repeated runs.
func TestRunIsDeterministic(t *testing.T) {
	inputs, local := mapgen.Generate(mapgen.Small())
	var pins []Input
	for _, in := range inputs {
		pins = append(pins, Input{Name: in.Name, Text: string(in.Src)})
	}
	var outs [2]string
	for i := range outs {
		res, err := Run(Options{LocalHost: local, PrintCosts: true, SortByCost: true}, pins...)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.WriteRoutes(&sb); err != nil {
			t.Fatal(err)
		}
		outs[i] = sb.String()
	}
	if outs[0] != outs[1] {
		t.Error("repeated runs differ")
	}
}
